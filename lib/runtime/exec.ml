module VM = Machine.Versioned_memory

type role_stats = {
  rs_role : string;
  rs_items : int;
  rs_busy : float;
  rs_starved : float;
  rs_blocked : float;
}

type stats = {
  threads : int;
  replicas : int;
  seconds : float;
  squashes : int;
  violations : int;
  roles : role_stats array;
}

type queue_stat = {
  qs_queue : Obs.Event.queue;
  qs_slot : int;
  qs_capacity : int;
  qs_high_water : int;
  qs_pushes : int;
}

type role_probe = {
  rp_role : string;
  rp_stage : Obs.Hist.t;
  rp_push_stall : Obs.Hist.t;
  rp_pop_stall : Obs.Hist.t;
  rp_squash : Obs.Hist.t;
  rp_validate : Obs.Hist.t;
}

type telemetry = {
  tl_roles : role_probe array;
  tl_queues : queue_stat list;
  tl_dropped : int;
}

type result = {
  output : string;
  stats : stats;
  events : Obs.Event.t list;
  telemetry : telemetry option;
}

let now = Unix.gettimeofday

(* Probe record kinds: [a] is always a duration in microseconds, [b]
   an iteration or queue slot.  Timestamps are microseconds since the
   run's own origin, matching the event stream's clock. *)
let k_stage = 0
let k_push_stall = 1
let k_pop_stall = 2
let k_squash = 3
let k_validate = 4

(* Per-role accounting; each role mutates only its own record, so no
   synchronization is needed (the records are read after the batch
   joins). *)
type acct = {
  mutable items : int;
  mutable busy : float;
  mutable starved : float;
  mutable blocked : float;
  mutable evs : Obs.Event.t list;  (* newest first *)
  prb : Obs.Probe.t option;  (* written only by the owning role *)
}

let make_acct ~prb () =
  { items = 0; busy = 0.; starved = 0.; blocked = 0.; evs = []; prb }

(* Same bounded spin-then-sleep policy as {!Spsc.push}: on an
   oversubscribed machine a spinning role must yield its timeslice to
   whichever role can make progress. *)
let backoff k = if k < 512 then Domain.cpu_relax () else Unix.sleepf 5e-5

(* Stall durations are recorded only on the slow path (the ring looked
   empty/full at least once), so the probe costs nothing on a smooth
   pipeline. *)
let stall_probe acct ~us ~kind ~slot t0 =
  match acct.prb with
  | None -> ()
  | Some p ->
    Obs.Probe.record p ~kind ~time:(us ())
      ~a:(int_of_float ((now () -. t0) *. 1e6))
      ~b:slot

let pop_acct ~us ~slot q acct =
  match Spsc.try_pop q with
  | `Item x -> Some x
  | `Closed -> None
  | `Empty ->
    let t0 = now () in
    let rec spin k =
      match Spsc.try_pop q with
      | `Item x ->
        acct.starved <- acct.starved +. (now () -. t0);
        stall_probe acct ~us ~kind:k_pop_stall ~slot t0;
        Some x
      | `Closed ->
        acct.starved <- acct.starved +. (now () -. t0);
        stall_probe acct ~us ~kind:k_pop_stall ~slot t0;
        None
      | `Empty ->
        backoff k;
        spin (k + 1)
    in
    spin 0

let push_acct ~us ~slot q acct x =
  if not (Spsc.try_push q x) then begin
    let t0 = now () in
    let rec spin k =
      if Spsc.try_push q x then begin
        acct.blocked <- acct.blocked +. (now () -. t0);
        stall_probe acct ~us ~kind:k_push_stall ~slot t0
      end
      else begin
        backoff k;
        spin (k + 1)
      end
    in
    spin 0
  end

let seq_result staged =
  let t0 = now () in
  let output = Staged.run_seq staged in
  {
    output;
    stats =
      {
        threads = 1;
        replicas = 0;
        seconds = now () -. t0;
        squashes = 0;
        violations = 0;
        roles = [||];
      };
    events = [];
    telemetry = None;
  }

let run ?pool ?(queue_capacity = 64) ?(events = false) ?(probe = false)
    ?span_registry ~threads ~name staged =
  let go d p =
      begin
        let fused = d = 2 in
        let r = if fused then 1 else d - 2 in
        let n = Staged.iterations staged in
        let accts =
          Array.init (r + 2) (fun k ->
              let prb =
                if probe then Some (Obs.Probe.create ~domain:k ()) else None
              in
              make_acct ~prb ())
        in
        let t0 = ref (now ()) in
        let us () = int_of_float ((now () -. !t0) *. 1e6) in
        let buf = Buffer.create 4096 in
        let squashes = ref 0 and violations = ref 0 in
        let error = Atomic.make None in
        (* Queues are existentially typed per Staged case, so each case
           builds its own and registers them for poisoning here. *)
        let poison_hooks = ref [] in
        let poison_all () = List.iter (fun f -> f ()) !poison_hooks in
        let guard f () =
          try f () with
          | Spsc.Poisoned -> ()
          | e ->
            let bt = Printexc.get_raw_backtrace () in
            ignore (Atomic.compare_and_set error None (Some (e, bt)));
            poison_all ()
        in
        let ev acct e = if events then acct.evs <- e :: acct.evs in
        let task_span acct ~task ~core ~phase ~iteration body =
          ev acct (Obs.Event.Task_start { time = us (); task; core; phase; iteration; work = 0 });
          let tb = now () in
          let v = body () in
          let t1 = now () in
          acct.busy <- acct.busy +. (t1 -. tb);
          acct.items <- acct.items + 1;
          (match acct.prb with
          | None -> ()
          | Some p ->
            Obs.Probe.record p ~kind:k_stage ~time:(us ())
              ~a:(int_of_float ((t1 -. tb) *. 1e6))
              ~b:iteration);
          ev acct (Obs.Event.Task_finish { time = us (); task; core });
          v
        in
        (* Queue stats are harvested through closures because each
           Staged case builds queues at its own element type. *)
        let queue_stats : (unit -> queue_stat) list ref = ref [] in
        let new_queues qkind k =
          let qs =
            Array.init k (fun _ ->
                Spsc.create ~capacity:queue_capacity ~instrument:probe ())
          in
          poison_hooks := (fun () -> Array.iter Spsc.poison qs) :: !poison_hooks;
          if probe then
            Array.iteri
              (fun slot q ->
                queue_stats :=
                  (fun () ->
                    {
                      qs_queue = qkind;
                      qs_slot = slot;
                      qs_capacity = Spsc.capacity q;
                      qs_high_water = Spsc.high_water q;
                      qs_pushes = Spsc.push_count q;
                    })
                  :: !queue_stats)
              qs;
          qs
        in
        let push_ev acct queue slot q task =
          ev acct
            (Obs.Event.Queue_push { time = us (); queue; slot; occupancy = Spsc.length q; task })
        in
        let pop_ev acct queue slot q task =
          ev acct
            (Obs.Event.Queue_pop { time = us (); queue; slot; occupancy = Spsc.length q; task })
        in
        let roles =
          match staged with
          | Staged.Pure s ->
            let a2b = new_queues Obs.Event.In_queue r in
            let b2c = if fused then [||] else new_queues Obs.Event.Out_queue r in
            let role_a () =
              let acct = accts.(0) in
              for i = 0 to n - 1 do
                let item =
                  task_span acct ~task:(3 * i) ~core:0 ~phase:'A' ~iteration:i (fun () ->
                      s.Staged.produce i)
                in
                push_acct ~us ~slot:(i mod r) a2b.(i mod r) acct (i, item);
                push_ev acct Obs.Event.In_queue (i mod r) a2b.(i mod r) (3 * i)
              done;
              Array.iter Spsc.close a2b
            in
            let transform acct k i item =
              task_span acct ~task:((3 * i) + 1) ~core:(k + 1) ~phase:'B' ~iteration:i
                (fun () -> s.Staged.transform item)
            in
            let consume acct i res =
              task_span acct ~task:((3 * i) + 2) ~core:(r + 1) ~phase:'C' ~iteration:i
                (fun () -> s.Staged.consume buf i res);
              ev acct (Obs.Event.Iter_commit { time = us (); iteration = i })
            in
            let role_b k () =
              let acct = accts.(k + 1) in
              let rec loop () =
                match pop_acct ~us ~slot:k a2b.(k) acct with
                | None -> Spsc.close b2c.(k)
                | Some (i, item) ->
                  pop_ev acct Obs.Event.In_queue k a2b.(k) (3 * i);
                  let res = transform acct k i item in
                  push_acct ~us ~slot:k b2c.(k) acct (i, res);
                  push_ev acct Obs.Event.Out_queue k b2c.(k) ((3 * i) + 1);
                  loop ()
              in
              loop ()
            in
            let role_c () =
              let acct = accts.(r + 1) in
              for i = 0 to n - 1 do
                match pop_acct ~us ~slot:(i mod r) b2c.(i mod r) acct with
                | None -> failwith "Runtime.Exec: result stream ended early"
                | Some (j, res) ->
                  if j <> i then failwith "Runtime.Exec: out-of-order result";
                  pop_ev acct Obs.Event.Out_queue (i mod r) b2c.(i mod r) ((3 * i) + 1);
                  consume acct i res
              done;
              s.Staged.finish buf
            in
            let role_bc () =
              let acct_b = accts.(1) and acct_c = accts.(2) in
              let rec loop i =
                match pop_acct ~us ~slot:0 a2b.(0) acct_b with
                | None ->
                  if i <> n then failwith "Runtime.Exec: item stream ended early";
                  s.Staged.finish buf
                | Some (j, item) ->
                  if j <> i then failwith "Runtime.Exec: out-of-order item";
                  pop_ev acct_b Obs.Event.In_queue 0 a2b.(0) (3 * i);
                  let res = transform acct_b 0 i item in
                  consume acct_c i res;
                  loop (i + 1)
              in
              loop 0
            in
            if fused then [| role_a; role_bc |]
            else Array.concat [ [| role_a |]; Array.init r role_b; [| role_c |] ]
          | Staged.Spec s ->
            let a2b = new_queues Obs.Event.In_queue r in
            let b2c = if fused then [||] else new_queues Obs.Event.Out_queue r in
            let vm = VM.create () in
            let vml = Mutex.create () in
            List.iter (fun (loc, v) -> VM.set_committed vm ~loc v) s.Staged.sp_init;
            let locked f =
              Mutex.lock vml;
              match f () with
              | v ->
                Mutex.unlock vml;
                v
              | exception e ->
                Mutex.unlock vml;
                raise e
            in
            let committed loc =
              match VM.committed_value vm ~loc with Some v -> v | None -> 0
            in
            let role_a () =
              let acct = accts.(0) in
              for i = 0 to n - 1 do
                let item =
                  task_span acct ~task:(3 * i) ~core:0 ~phase:'A' ~iteration:i (fun () ->
                      s.Staged.sp_produce i)
                in
                (* Versions open in logical order before dispatch, so a
                   replica's speculative reads can forward from every
                   earlier in-flight iteration. *)
                locked (fun () -> VM.begin_task vm ~task:i);
                push_acct ~us ~slot:(i mod r) a2b.(i mod r) acct (i, item);
                push_ev acct Obs.Event.In_queue (i mod r) a2b.(i mod r) (3 * i)
              done;
              Array.iter Spsc.close a2b
            in
            let exec_spec acct k i item =
              task_span acct ~task:((3 * i) + 1) ~core:(k + 1) ~phase:'B' ~iteration:i
                (fun () ->
                  let reads = ref [] in
                  let read loc =
                    let v =
                      locked (fun () ->
                          match VM.read vm ~task:i ~loc with Some v -> v | None -> 0)
                    in
                    reads := (loc, v) :: !reads;
                    v
                  in
                  let writes, res = s.Staged.sp_exec ~read item in
                  locked (fun () ->
                      List.iter (fun (loc, v) -> VM.write vm ~task:i ~loc v) writes);
                  (!reads, writes, res))
            in
            (* Commit-time validation: every value iteration [i] read
               must equal the committed value now that all earlier
               iterations have committed — i.e. exactly what the
               sequential run would have read.  A mismatch squashes the
               iteration: re-execute against committed state, neutralize
               stale buffered writes (re-writing the committed value is
               a silent store), and only then commit. *)
            let commit_one acct i item (reads, writes, res) =
              let tv = if acct.prb == None then 0. else now () in
              let stale =
                locked (fun () -> List.exists (fun (loc, obs) -> committed loc <> obs) reads)
              in
              (match acct.prb with
              | None -> ()
              | Some p ->
                Obs.Probe.record p ~kind:k_validate ~time:(us ())
                  ~a:(int_of_float ((now () -. tv) *. 1e6))
                  ~b:i);
              let writes, res =
                if not stale then (writes, res)
                else begin
                  incr squashes;
                  ev acct
                    (Obs.Event.Task_squash
                       { time = us (); task = (3 * i) + 1; core = r + 1; elapsed = 0 });
                  let read loc = locked (fun () -> committed loc) in
                  let tb = now () in
                  let writes', res' = s.Staged.sp_exec ~read item in
                  let t1 = now () in
                  acct.busy <- acct.busy +. (t1 -. tb);
                  (match acct.prb with
                  | None -> ()
                  | Some p ->
                    Obs.Probe.record p ~kind:k_squash ~time:(us ())
                      ~a:(int_of_float ((t1 -. tb) *. 1e6))
                      ~b:i);
                  locked (fun () ->
                      List.iter
                        (fun (loc, _) ->
                          if not (List.mem_assoc loc writes') then
                            VM.write vm ~task:i ~loc (committed loc))
                        writes);
                  (writes', res')
                end
              in
              let viols =
                locked (fun () ->
                    List.iter (fun (loc, v) -> VM.write vm ~task:i ~loc v) writes;
                    VM.commit vm ~task:i)
              in
              violations := !violations + List.length viols;
              task_span acct ~task:((3 * i) + 2) ~core:(r + 1) ~phase:'C' ~iteration:i
                (fun () -> s.Staged.sp_consume buf i res);
              ev acct (Obs.Event.Iter_commit { time = us (); iteration = i })
            in
            let role_b k () =
              let acct = accts.(k + 1) in
              let rec loop () =
                match pop_acct ~us ~slot:k a2b.(k) acct with
                | None -> Spsc.close b2c.(k)
                | Some (i, item) ->
                  pop_ev acct Obs.Event.In_queue k a2b.(k) (3 * i);
                  let payload = exec_spec acct k i item in
                  push_acct ~us ~slot:k b2c.(k) acct (i, item, payload);
                  push_ev acct Obs.Event.Out_queue k b2c.(k) ((3 * i) + 1);
                  loop ()
              in
              loop ()
            in
            let role_c () =
              let acct = accts.(r + 1) in
              for i = 0 to n - 1 do
                match pop_acct ~us ~slot:(i mod r) b2c.(i mod r) acct with
                | None -> failwith "Runtime.Exec: result stream ended early"
                | Some (j, item, payload) ->
                  if j <> i then failwith "Runtime.Exec: out-of-order result";
                  pop_ev acct Obs.Event.Out_queue (i mod r) b2c.(i mod r) ((3 * i) + 1);
                  commit_one acct i item payload
              done;
              s.Staged.sp_finish ~read:(fun loc -> locked (fun () -> committed loc)) buf
            in
            let role_bc () =
              let acct_b = accts.(1) and acct_c = accts.(2) in
              let rec loop i =
                match pop_acct ~us ~slot:0 a2b.(0) acct_b with
                | None ->
                  if i <> n then failwith "Runtime.Exec: item stream ended early";
                  s.Staged.sp_finish ~read:(fun loc -> locked (fun () -> committed loc)) buf
                | Some (j, item) ->
                  if j <> i then failwith "Runtime.Exec: out-of-order item";
                  pop_ev acct_b Obs.Event.In_queue 0 a2b.(0) (3 * i);
                  let payload = exec_spec acct_b 0 i item in
                  commit_one acct_c i item payload;
                  loop (i + 1)
              in
              loop 0
            in
            if fused then [| role_a; role_bc |]
            else Array.concat [ [| role_a |]; Array.init r role_b; [| role_c |] ]
        in
        let nroles = Array.length roles in
        t0 := now ();
        let tstart = now () in
        Parallel.Pool.parallel_for p ~n:nroles (fun k -> guard roles.(k) ());
        let seconds = now () -. tstart in
        (match Atomic.get error with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ());
        let role_name k = if k = 0 then "A" else if k <= r then Printf.sprintf "B%d" (k - 1) else "C" in
        let role_rows =
          Array.mapi
            (fun k (a : acct) ->
              {
                rs_role = role_name k;
                rs_items = a.items;
                rs_busy = a.busy;
                rs_starved = a.starved;
                rs_blocked = a.blocked;
              })
            accts
        in
        (match span_registry with
        | None -> ()
        | Some reg ->
          Array.iter
            (fun rs -> Obs.Span.record reg (Printf.sprintf "real/%s/%s" name rs.rs_role) rs.rs_busy)
            role_rows);
        let telemetry =
          if not probe then None
          else begin
            let role_probe k (a : acct) =
              let rp =
                {
                  rp_role = role_name k;
                  rp_stage = Obs.Hist.create ();
                  rp_push_stall = Obs.Hist.create ();
                  rp_pop_stall = Obs.Hist.create ();
                  rp_squash = Obs.Hist.create ();
                  rp_validate = Obs.Hist.create ();
                }
              in
              (match a.prb with
              | None -> ()
              | Some p ->
                List.iter
                  (fun (e : Obs.Probe.entry) ->
                    let h =
                      if e.e_kind = k_stage then rp.rp_stage
                      else if e.e_kind = k_push_stall then rp.rp_push_stall
                      else if e.e_kind = k_pop_stall then rp.rp_pop_stall
                      else if e.e_kind = k_squash then rp.rp_squash
                      else rp.rp_validate
                    in
                    Obs.Hist.add h e.e_a)
                  (Obs.Probe.entries p));
              rp
            in
            let dropped =
              Array.fold_left
                (fun acc (a : acct) ->
                  match a.prb with Some p -> acc + Obs.Probe.dropped p | None -> acc)
                0 accts
            in
            Some
              {
                tl_roles = Array.mapi role_probe accts;
                tl_queues = List.rev_map (fun f -> f ()) !queue_stats;
                tl_dropped = dropped;
              }
          end
        in
        let merged_events =
          if not events then []
          else begin
            let span_us = us () in
            let all =
              Array.fold_left (fun acc (a : acct) -> List.rev_append a.evs acc) [] accts
            in
            Obs.Event.Loop_begin { time = 0; loop = name }
            :: List.stable_sort
                 (fun a b -> Int.compare (Obs.Event.time a) (Obs.Event.time b))
                 all
            @ [ Obs.Event.Loop_end { time = span_us; loop = name; span = span_us } ]
          end
        in
        {
          output = Buffer.contents buf;
          stats =
            {
              threads = d;
              replicas = r;
              seconds;
              squashes = !squashes;
              violations = !violations;
              roles = role_rows;
            };
          events = merged_events;
          telemetry;
        }
      end
  in
  match pool with
  | Some p ->
    let d = min threads (Parallel.Pool.size p) in
    if d <= 1 then seq_result staged else go d p
  | None ->
    if threads <= 1 then seq_result staged
    else
      (* One pool slot per role: A + C + the B replicas (fused B+C at
         two domains), so the role count equals [threads]. *)
      Parallel.Pool.with_pool ~domains:threads (fun p -> go threads p)

let queue_stat_name qs =
  Printf.sprintf "%s-queue %d" (Obs.Event.queue_name qs.qs_queue) qs.qs_slot

let pp_telemetry stats ppf tl =
  Format.fprintf ppf "telemetry: %d roles, %d queues, %d probe records dropped@,"
    (Array.length tl.tl_roles)
    (List.length tl.tl_queues)
    tl.tl_dropped;
  Array.iteri
    (fun k rp ->
      let rs = stats.roles.(k) in
      Format.fprintf ppf "  role %-3s items=%d busy=%.4fs@," rp.rp_role rs.rs_items
        rs.rs_busy;
      let line label h =
        if Obs.Hist.count h > 0 then
          Format.fprintf ppf "    %-11s %a@," label Obs.Hist.pp h
      in
      line "stage-us" rp.rp_stage;
      line "pop-stall" rp.rp_pop_stall;
      line "push-stall" rp.rp_push_stall;
      line "validate" rp.rp_validate;
      line "squash" rp.rp_squash)
    tl.tl_roles;
  List.iter
    (fun qs ->
      Format.fprintf ppf "  %-12s capacity=%d high-water=%d pushes=%d@,"
        (queue_stat_name qs) qs.qs_capacity qs.qs_high_water qs.qs_pushes)
    tl.tl_queues

(* The probe-dump interchange format [Sim.Calibrate.of_probe_json]
   consumes; latencies are microseconds. *)
let telemetry_to_json ~name stats tl =
  let iterations =
    if Array.length stats.roles = 0 then 0
    else stats.roles.(Array.length stats.roles - 1).rs_items
  in
  let role k rp =
    let rs = stats.roles.(k) in
    Obs.Json.Obj
      [
        ("role", Obs.Json.Str rp.rp_role);
        ("items", Obs.Json.Int rs.rs_items);
        ("busy_s", Obs.Json.Float rs.rs_busy);
        ("stage", Obs.Hist.to_json rp.rp_stage);
        ("pop_stall", Obs.Hist.to_json rp.rp_pop_stall);
        ("push_stall", Obs.Hist.to_json rp.rp_push_stall);
        ("validate", Obs.Hist.to_json rp.rp_validate);
        ("squash", Obs.Hist.to_json rp.rp_squash);
      ]
  in
  let queue qs =
    Obs.Json.Obj
      [
        ("queue", Obs.Json.Str (Obs.Event.queue_name qs.qs_queue));
        ("slot", Obs.Json.Int qs.qs_slot);
        ("capacity", Obs.Json.Int qs.qs_capacity);
        ("high_water", Obs.Json.Int qs.qs_high_water);
        ("pushes", Obs.Json.Int qs.qs_pushes);
      ]
  in
  Obs.Json.Obj
    [
      ("probe_dump", Obs.Json.Int 1);
      ("bench", Obs.Json.Str name);
      ("threads", Obs.Json.Int stats.threads);
      ("replicas", Obs.Json.Int stats.replicas);
      ("iterations", Obs.Json.Int iterations);
      ("seconds", Obs.Json.Float stats.seconds);
      ("squashes", Obs.Json.Int stats.squashes);
      ("dropped", Obs.Json.Int tl.tl_dropped);
      ("roles", Obs.Json.Arr (Array.to_list (Array.mapi role tl.tl_roles)));
      ("queues", Obs.Json.Arr (List.map queue tl.tl_queues));
    ]
