(** The [repro validate-real] driver: run registry benchmarks on real
    domains and cross-check them against the simulator.

    For each selected benchmark this runs the {!Real_bench} pipeline at
    every thread count from 1 to [max_threads], checks that the
    parallel output is byte-identical to the sequential reference,
    measures wall-clock speedup, and prints it side by side with the
    simulator's predicted speedup for the same study at the same thread
    count (profile -> {!Core.Framework.build} -> {!Sim.Speedup.sweep}).

    With [history] set, one {!Obs_analysis.History} entry is appended
    whose [real] block holds every measured point; the regression and
    scaling gates skip such entries.  With [trace] set, the first
    benchmark is re-run instrumented once per {e parallel} sweep point
    (2..[max_threads] threads) and each run's event stream written as
    its own Chrome trace: for [--trace out.json] the files are
    [out-t2.json], [out-t3.json], ...  The 1-thread point runs the
    sequential reference, which has no roles and hence no events, so
    no [-t1] file is written.

    [corrupt] is the gate's self-test: it flips one byte of the first
    parallel output before comparison, which must make {!run} report a
    mismatch — proving the equality check can actually fail. *)

type outcome = {
  ok : bool;  (** every output byte-identical at every thread count *)
  benches : int;
  points : Obs_analysis.History.real_point list;
}

val run :
  ?benches:string list ->
  ?max_threads:int ->
  ?scale:Benchmarks.Study.scale ->
  ?history:string ->
  ?trace:string ->
  ?corrupt:bool ->
  unit ->
  outcome
(** Defaults: all 11 registry benchmarks, [max_threads = 4], [Small]
    scale, no history, no trace, no corruption. *)
