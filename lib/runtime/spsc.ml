exception Poisoned

(* Snapshot cells live at index 0 of 16-word int arrays so the
   producer-written snapshot and the consumer-written snapshot sit on
   different cache lines (a 16-word OCaml float-free array spans at
   least one 64-byte line on 64-bit).  The head/tail atomics are boxed
   and separately allocated, which keeps them off each other's line as
   well. *)
let pad = 16

type 'a t = {
  buf : 'a option array;
  mask : int;
  head : int Atomic.t;  (* next index to pop *)
  tail : int Atomic.t;  (* next index to push *)
  head_snap : int array;  (* producer's cached view of head *)
  tail_snap : int array;  (* consumer's cached view of tail *)
  closed : bool Atomic.t;
  poisoned : bool Atomic.t;
  instrument : bool;
  stats : int array;  (* producer-only: [0] high-water, [1] push count *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(capacity = 64) ?(instrument = false) () =
  let cap = pow2 (max 1 capacity) 1 in
  {
    buf = Array.make cap None;
    mask = cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    head_snap = Array.make pad 0;
    tail_snap = Array.make pad 0;
    closed = Atomic.make false;
    poisoned = Atomic.make false;
    instrument;
    stats = Array.make pad 0;
  }

let capacity t = t.mask + 1

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let check_poison t = if Atomic.get t.poisoned then raise Poisoned

let try_push t x =
  check_poison t;
  let tail = Atomic.get t.tail in
  let full snap = tail - snap > t.mask in
  let fresh =
    if full t.head_snap.(0) then begin
      t.head_snap.(0) <- Atomic.get t.head;
      t.head_snap.(0)
    end
    else t.head_snap.(0)
  in
  if full fresh then false
  else begin
    t.buf.(tail land t.mask) <- Some x;
    (* Release: publishes the buffer store above to the consumer. *)
    Atomic.set t.tail (tail + 1);
    if t.instrument then begin
      (* Producer-only stores into a padded cell: exact occupancy needs
         the real head, but this is off the default path. *)
      let occ = tail + 1 - Atomic.get t.head in
      if occ > t.stats.(0) then t.stats.(0) <- occ;
      t.stats.(1) <- t.stats.(1) + 1
    end;
    true
  end

(* Bounded spin, then sleep: on a machine with fewer free cores than
   domains a pure [cpu_relax] loop burns the whole OS timeslice the
   peer needs to make progress. *)
let backoff k =
  if k < 512 then Domain.cpu_relax () else Unix.sleepf 5e-5

let push t x =
  let rec go k =
    if not (try_push t x) then begin
      backoff k;
      go (k + 1)
    end
  in
  go 0

let try_pop t =
  check_poison t;
  let head = Atomic.get t.head in
  let empty snap = head >= snap in
  let fresh =
    if empty t.tail_snap.(0) then begin
      t.tail_snap.(0) <- Atomic.get t.tail;
      t.tail_snap.(0)
    end
    else t.tail_snap.(0)
  in
  if empty fresh then
    if Atomic.get t.closed && Atomic.get t.tail = head then `Closed else `Empty
  else begin
    let i = head land t.mask in
    let v = t.buf.(i) in
    (* Drop the reference so the cell doesn't keep the item live until
       the ring wraps. *)
    t.buf.(i) <- None;
    Atomic.set t.head (head + 1);
    match v with Some x -> `Item x | None -> assert false
  end

let pop t =
  let rec go k =
    match try_pop t with
    | `Item x -> Some x
    | `Closed -> None
    | `Empty ->
      backoff k;
      go (k + 1)
  in
  go 0

let high_water t = t.stats.(0)

let push_count t = t.stats.(1)

let close t = Atomic.set t.closed true

let poison t = Atomic.set t.poisoned true
