open Staged

let phase_rank = function Ir.Task.A -> 0 | Ir.Task.B -> 1 | Ir.Task.C -> 2

type shape = {
  nc : int;
  phase : int array;  (* phase_rank per node *)
  ins : (int * bool) array array;  (* per node: (src, loop_carried), src ascending *)
  salt : int array;
}

let shape_of pdg part =
  let nc = Ir.Pdg.node_count pdg in
  let phase =
    Array.init nc (fun n -> phase_rank (Dswp.Partition.phase_of_node part n))
  in
  let ins = Array.make nc [] in
  List.iter
    (fun (e : Ir.Pdg.edge) -> ins.(e.dst) <- (e.src, e.loop_carried) :: ins.(e.dst))
    (Ir.Pdg.edges pdg);
  let ins =
    Array.map
      (fun l ->
        Array.of_list
          (List.sort (fun (a, ac) (b, bc) -> compare (a, ac) (b, bc)) l))
      ins
  in
  let salt = Array.init nc (fun n -> mix (mix 0 0x5eed) n) in
  { nc; phase; ins; salt }

(* Availability of a dependence value, identical in [staged] and
   [reference]: intra-iteration values flow only forward (or within a
   stage, where ascending node ids order the computation); carried
   values flow forward or within a sequential stage — replicated B
   keeps no cross-iteration state. *)
let avail_intra sh m n = sh.phase.(m) <= sh.phase.(n)

let avail_carried sh m n =
  sh.phase.(m) < sh.phase.(n) || (sh.phase.(m) = sh.phase.(n) && sh.phase.(m) <> 1)

(* Value of node [n] at iteration [i], reading intra-iteration inputs
   from [cur] and previous-iteration inputs from [prev]; unavailable
   inputs contribute 0. *)
let node_value sh ~cur ~prev i n =
  Array.fold_left
    (fun h (m, carried) ->
      let x =
        if carried then if avail_carried sh m n then prev m else 0
        else if avail_intra sh m n then cur m
        else 0
      in
      mix h x)
    (mix sh.salt.(n) i)
    sh.ins.(n)

let nodes_in sh rank =
  let l = ref [] in
  for n = sh.nc - 1 downto 0 do
    if sh.phase.(n) = rank then l := n :: !l
  done;
  Array.of_list !l

let digest_line total buf i vals =
  let d = Array.fold_left mix 0 vals in
  total := mix (mix !total i) d;
  Buffer.add_string buf (Printf.sprintf "%d %s\n" i (hex d))

let seal total buf = Buffer.add_string buf ("total " ^ hex !total ^ "\n")

let staged pdg part ~iterations =
  let sh = shape_of pdg part in
  let a_nodes = nodes_in sh 0 and b_nodes = nodes_in sh 1 and c_nodes = nodes_in sh 2 in
  let fill vals prev nodes i =
    Array.iter
      (fun n ->
        vals.(n) <- node_value sh ~cur:(Array.get vals) ~prev:(Array.get prev) i n)
      nodes
  in
  let a_prev = ref (Array.make sh.nc 0) in
  let c_prev = ref (Array.make sh.nc 0) in
  let total = ref 0 in
  Pure
    {
      iterations;
      produce =
        (fun i ->
          let cur = Array.make sh.nc 0 in
          let prev = !a_prev in
          fill cur prev a_nodes i;
          a_prev := cur;
          (* [cur]/[prev] are never mutated after this point — A swaps
             in fresh arrays and B works on a copy — so shipping the
             references across the queue is safe. *)
          (i, cur, prev));
      transform =
        (fun (i, cur, prev) ->
          let vals = Array.copy cur in
          fill vals prev b_nodes i;
          (i, vals));
      consume =
        (fun buf i (j, vals) ->
          assert (i = j);
          fill vals !c_prev c_nodes i;
          c_prev := vals;
          digest_line total buf i vals);
      finish = (fun buf -> seal total buf);
    }

let reference pdg part ~iterations =
  let sh = shape_of pdg part in
  let buf = Buffer.create 1024 in
  let total = ref 0 in
  let prev = ref (Array.make sh.nc 0) in
  for i = 0 to iterations - 1 do
    let cur = Array.make sh.nc 0 in
    for n = 0 to sh.nc - 1 do
      cur.(n) <- node_value sh ~cur:(Array.get cur) ~prev:(Array.get !prev) i n
    done;
    prev := cur;
    digest_line total buf i cur
  done;
  seal total buf;
  Buffer.contents buf
