(** Event-driven simulator of the paper's execution plan (Section 3).

    One core runs phase A tasks serially; phase B tasks are dispatched, at
    phase-A completion, to the least-loaded B core's bounded in-queue
    (32 entries by default — a full queue stalls the A core); each B core
    executes its queue in FIFO order and delivers results through a
    bounded out-queue; one core runs phase C serially, consuming and
    committing iterations in order.  Communication through a queue costs
    [comm_latency] work units.

    Dependence handling follows the paper's methodology: synchronized
    edges always delay the consumer until the producer finishes;
    speculated edges are the dynamic dependences that actually occurred,
    and under the default [Serialize] policy they too delay the consumer
    (loss of speculation benefit, no extra cost).  The [Squash] policy
    instead lets the consumer run and squashes + re-executes it when the
    producer finishes later (modelling wasted work).  [forwarding] enables
    eager value forwarding: a consumer may overlap a producer provided its
    read (at [dst_offset]) happens no earlier than the producer's write
    (at [src_offset]). *)

type misspec_policy = Sched.misspec_policy = Serialize | Squash

type policy = Sched.policy = { misspec : misspec_policy; forwarding : bool }

val default_policy : policy
(** [Serialize], no forwarding — the paper's model. *)

type sched_entry = Sched.sched_entry = {
  s_task : int;
  s_core : int;
  s_start : int;
  s_finish : int;
}
(** Final (non-squashed) execution interval of one task. *)

type loop_result = Sched.loop_result = {
  span : int;  (** parallel execution time of the loop *)
  busy : int array;
      (** per-core busy work units.  Includes squashed work, charged at
          what the core actually spent: a run aborted mid-flight counts
          only its elapsed time, a completed-then-squashed run counts in
          full — so [busy.(c) <= span] for every core under every
          policy. *)
  misspec_delayed : int;  (** tasks whose start a speculated edge delayed *)
  squashes : int;  (** re-executions under [Squash] *)
  in_queue_high_water : int;
      (** peak in-queue occupancy.  A squash re-inserts the task at the
          head of its in-queue without re-running the capacity check (it
          reclaims the slot it issued from), so under [Squash] this may
          exceed [queue_capacity] by at most [squashes]; fresh dispatches
          from phase A always respect the bound. *)
  out_queue_high_water : int;
  b_tasks_per_core : int array;  (** B tasks executed per B core *)
  schedule : sched_entry list;
      (** one entry per task, in completion order; intervals on one core
          never overlap *)
}

type result = {
  total_time : int;  (** parallel time of the whole program *)
  sequential_time : int;  (** single-threaded time of the same input *)
  loops : (string * loop_result) list;
}

val validate_default : bool ref
(** When true, every simulated schedule is re-checked by {!Oracle}
    (a violation raises [Failure]).  Initialized from the [SIM_VALIDATE]
    environment variable ("1"/"true"/"yes"/"on"); the per-call
    [?validate] argument overrides it. *)

val run_loop :
  Machine.Config.t ->
  ?policy:policy ->
  ?validate:bool ->
  ?obs:Obs.Sink.t ->
  ?metrics:Obs.Metrics.t ->
  Input.loop ->
  loop_result
(** [?obs] (default {!Obs.Sink.null}) receives the run's structured
    events — task start/finish/squash, iteration commits, queue
    push/pop with occupancy, dispatch and wake — with loop-local times;
    the null sink costs one branch per site and no allocation.
    [?metrics] names the registry that accumulates the run's counters
    (misspec_delayed, squashes, busy/A..C) and queue-occupancy gauges;
    with a sampling registry, per-slot occupancy time series are
    recorded too.  Omitted, a private registry is used and discarded. *)

val run :
  Machine.Config.t -> ?policy:policy -> ?validate:bool -> ?obs:Obs.Sink.t -> Input.t -> result
(** Loops' events are rebased to program time and bracketed by
    [Loop_begin]/[Loop_end], so one sink observes the whole program. *)

val speedup : result -> float
(** [sequential_time / total_time]; 1.0 for an empty program. *)
