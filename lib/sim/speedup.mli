(** Thread sweeps and speedup series — the data behind Figures 4-7 and
    Table 2 of the paper. *)

type point = {
  threads : int;
  speedup : float;
  result : Pipeline.result;
}

type series = { label : string; points : point list }

val paper_thread_counts : int list
(** 1, 2, 4, 6, 8, 12, 16, 24, 32 — the sweep used throughout. *)

val sweep :
  ?pool:Parallel.Pool.t ->
  ?threads:int list ->
  ?policy:Pipeline.policy ->
  ?config:(cores:int -> Machine.Config.t) ->
  label:string ->
  Input.t ->
  series
(** Run the program on machines of each size; speedups are relative to
    the single-threaded time.  With [?pool], the sweep points run
    concurrently across the pool's domains; the resulting series is
    bit-identical to the sequential one (points are independent and
    gathered in thread order). *)

val best : series -> point
(** The paper's Table 2 metric: the point of maximum speedup, preferring
    the minimum thread count achieving it (within 1%% of the maximum). *)

val at_threads : series -> int -> point option

val moore_speedup : threads:int -> float
(** Expected speedup from Moore's-law trends for a given core count:
    1.4x per doubling of cores, i.e. [1.4 ** log2 threads] (Table 2). *)

val pp_series : Format.formatter -> series -> unit
