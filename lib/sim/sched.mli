(** Schedule-level data shared by the simulator and its oracle.

    [Pipeline] produces these values and re-exports the types under its
    own name; [Oracle] consumes them.  Keeping them in a leaf module lets
    the oracle validate every schedule the pipeline emits without a
    dependency cycle between the two. *)

type misspec_policy = Serialize | Squash

type policy = { misspec : misspec_policy; forwarding : bool }

val default_policy : policy
(** [Serialize], no forwarding — the paper's model. *)

type sched_entry = {
  s_task : int;
  s_core : int;
  s_start : int;
  s_finish : int;
}
(** Final (non-squashed) execution interval of one task. *)

type loop_result = {
  span : int;  (** parallel execution time of the loop *)
  busy : int array;  (** per-core busy work units (includes squashed work) *)
  misspec_delayed : int;  (** tasks whose start a speculated edge delayed *)
  squashes : int;  (** re-executions under [Squash] *)
  in_queue_high_water : int;
  out_queue_high_water : int;
  b_tasks_per_core : int array;  (** B tasks executed per B core *)
  schedule : sched_entry list;
      (** one entry per task, in completion order; intervals on one core
          never overlap *)
}

val pp_entry : Format.formatter -> sched_entry -> unit
