type misspec_policy = Serialize | Squash

type policy = { misspec : misspec_policy; forwarding : bool }

let default_policy = { misspec = Serialize; forwarding = false }

type sched_entry = { s_task : int; s_core : int; s_start : int; s_finish : int }

type loop_result = {
  span : int;
  busy : int array;
  misspec_delayed : int;
  squashes : int;
  in_queue_high_water : int;
  out_queue_high_water : int;
  b_tasks_per_core : int array;
  schedule : sched_entry list;
}

let pp_entry ppf e =
  Format.fprintf ppf "task %d on core %d: [%d, %d)" e.s_task e.s_core e.s_start e.s_finish
