(** Realize a candidate plan as a simulator loop.

    The profiled traces carry the benchmarks' {e hand} decomposition in
    their task phases, so they cannot express a different stage
    assignment.  The planner tournament instead synthesizes a loop
    directly from the static PDG and a candidate partition: one task per
    non-empty stage per iteration, weighted by the stage's share of the
    loop body, plus the dependence edges the plan leaves visible:

    - a surviving loop-carried edge between two different stages becomes
      a synchronized edge from the producer stage's task in iteration
      [i] to the consumer stage's task in iteration [i + 1] (same-stage
      carried edges are implicit in the serial A/C chains);
    - an edge broken by an enabled {e speculative} breaker (alias,
      value, control, silent store) becomes a speculated cross-iteration
      edge on the iterations where it dynamically occurs — its PDG
      probability spread deterministically over the iteration space —
      except same-serial-stage edges, already ordered by the chain;
    - edges broken by annotations (commutative, Y-branch) are removed,
      and surviving intra-iteration forward edges are implicit in the
      pipeline structure (A dispatches B, C commits after B).

    Every candidate in a tournament is realized through this one model,
    so simulated speedups are comparable across partitioners and breaker
    sets, and the result is a plain {!Input.loop} the oracle can check. *)

val loop :
  Ir.Pdg.t ->
  partition:Dswp.Partition.t ->
  enabled:(Ir.Pdg.breaker -> bool) ->
  iterations:int ->
  ?scale:int ->
  ?calibration:Calibrate.t ->
  ?distances:((Ir.Task.phase * Ir.Task.phase) * (int * float) list) list ->
  unit ->
  Input.loop
(** [scale] (default 100) converts normalized stage weights to integer
    work units; a non-empty stage with positive weight gets at least 1.
    With [?calibration] the stage weights split the calibrated
    per-iteration cost ({!Calibrate.total_cost}) instead of [scale],
    and speculated edges use the measured occurrence rate of their
    stage pair when one was fitted (falling back to the PDG's static
    probability) — realized speedups then live on the profiled
    source's cost scale and are comparable to full-trace sweeps.

    Iteration distances: an edge whose PDG record carries
    [distance = Some d] synchronizes (or, speculated, squashes)
    producer iteration [i] against consumer iteration [i + d] instead
    of the conservative [i + 1].  [?distances] supplies a per-stage-pair
    histogram [(d, fraction) list] — e.g. measured by the static
    analyzer's reference interpreter ({!Flow} via [repro infer]) —
    that spreads each {e speculated} edge's occurrence rate across
    several distances, replacing the single-distance model that the
    ROADMAP flags as the distance-1 calibration bottleneck.

    Raises [Invalid_argument] on negative [iterations], [scale < 1],
    a histogram distance [< 1] or a negative histogram fraction. *)
