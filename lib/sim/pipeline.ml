type misspec_policy = Sched.misspec_policy = Serialize | Squash

type policy = Sched.policy = { misspec : misspec_policy; forwarding : bool }

let default_policy = Sched.default_policy

type sched_entry = Sched.sched_entry = {
  s_task : int;
  s_core : int;
  s_start : int;
  s_finish : int;
}

type loop_result = Sched.loop_result = {
  span : int;
  busy : int array;
  misspec_delayed : int;
  squashes : int;
  in_queue_high_water : int;
  out_queue_high_water : int;
  b_tasks_per_core : int array;
  schedule : sched_entry list;
}

type result = {
  total_time : int;
  sequential_time : int;
  loops : (string * loop_result) list;
}

(* Every schedule the simulator emits can be re-checked by Sim.Oracle.
   The default comes from the SIM_VALIDATE environment variable so
   scripts/check.sh (and any CI run) can turn the oracle on for the whole
   process; tests flip the ref directly. *)
let validate_default =
  ref
    (match Sys.getenv_opt "SIM_VALIDATE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

(* Per-iteration view of the loop's tasks. *)
type iter_view = { a : int option; bs : int list; c : int option }

type a_state = ARun of int | ADispatch of int * int list | ADone

type event = Finish of int * int  (* task id, generation *) | Wake

let phase_letter = function Ir.Task.A -> 'A' | Ir.Task.B -> 'B' | Ir.Task.C -> 'C'

let sequential_result cfg ?(obs = Obs.Sink.null) (loop : Input.loop) =
  let w = Input.loop_work loop in
  let busy = Array.make cfg.Machine.Config.cores 0 in
  busy.(0) <- w;
  let observing = Obs.Sink.enabled obs in
  let _, schedule =
    Array.fold_left
      (fun (t, acc) (task : Ir.Task.t) ->
        let f = t + task.Ir.Task.work in
        if observing then begin
          Obs.Sink.emit obs
            (Obs.Event.Task_start
               {
                 time = t;
                 task = task.Ir.Task.id;
                 core = 0;
                 phase = phase_letter task.Ir.Task.phase;
                 iteration = task.Ir.Task.iteration;
                 work = task.Ir.Task.work;
               });
          Obs.Sink.emit obs
            (Obs.Event.Task_finish { time = f; task = task.Ir.Task.id; core = 0 })
        end;
        (f, { s_task = task.Ir.Task.id; s_core = 0; s_start = t; s_finish = f } :: acc))
      (0, []) loop.Input.tasks
  in
  {
    span = w;
    busy;
    misspec_delayed = 0;
    squashes = 0;
    in_queue_high_water = 0;
    out_queue_high_water = 0;
    b_tasks_per_core = [||];
    schedule = List.rev schedule;
  }

let build_iter_views (loop : Input.loop) =
  let iters = Input.iterations loop in
  let a = Array.make iters None and c = Array.make iters None in
  let bs = Array.make iters [] in
  Array.iter
    (fun (t : Ir.Task.t) ->
      let i = t.Ir.Task.iteration in
      match t.Ir.Task.phase with
      | Ir.Task.A -> a.(i) <- Some t.Ir.Task.id
      | Ir.Task.C -> c.(i) <- Some t.Ir.Task.id
      | Ir.Task.B -> bs.(i) <- t.Ir.Task.id :: bs.(i))
    loop.Input.tasks;
  Array.init iters (fun i ->
      let sorted =
        List.sort
          (fun x y ->
            compare loop.Input.tasks.(x).Ir.Task.intra loop.Input.tasks.(y).Ir.Task.intra)
          bs.(i)
      in
      { a = a.(i); bs = sorted; c = c.(i) })

(* The views (and their per-iteration sort) depend only on the loop, not
   on the machine, yet a thread sweep re-enters run_loop once per core
   count with the same loop value.  Memoize per loop, keyed by physical
   identity — a structural duplicate would only recompute identical
   views, never a wrong result.  The mutex makes the cache safe when
   sweeps run concurrently in several domains; the size cap keeps it
   from growing without bound across long sessions. *)
module Loop_tbl = Hashtbl.Make (struct
  type t = Input.loop

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let views_cache : iter_view array Loop_tbl.t = Loop_tbl.create 64
let views_lock = Mutex.create ()

let iter_views loop =
  Mutex.lock views_lock;
  match Loop_tbl.find_opt views_cache loop with
  | Some v ->
    Mutex.unlock views_lock;
    v
  | None ->
    Mutex.unlock views_lock;
    let v = build_iter_views loop in
    Mutex.lock views_lock;
    if Loop_tbl.length views_cache >= 512 then Loop_tbl.reset views_cache;
    Loop_tbl.replace views_cache loop v;
    Mutex.unlock views_lock;
    v

let simulate_loop (cfg : Machine.Config.t) ?(policy = default_policy)
    ?(obs = Obs.Sink.null) ?metrics (loop : Input.loop) =
  let n = cfg.Machine.Config.cores in
  let ntasks = Array.length loop.Input.tasks in
  if n <= 1 || ntasks = 0 then sequential_result cfg ~obs loop
  else begin
    let assignment =
      match Dswp.Planner.plan cfg with
      | Some a -> a
      | None -> assert false (* n > 1 *)
    in
    let lat = cfg.Machine.Config.comm_latency in
    let cap = cfg.Machine.Config.queue_capacity in
    let views = iter_views loop in
    let iters = Array.length views in
    let work tid = loop.Input.tasks.(tid).Ir.Task.work in
    let phase tid = loop.Input.tasks.(tid).Ir.Task.phase in
    let iteration tid = loop.Input.tasks.(tid).Ir.Task.iteration in
    (* Dependence adjacency. *)
    let in_edges = Array.make ntasks [] in
    let out_edges = Array.make ntasks [] in
    List.iter
      (fun (e : Input.edge) ->
        in_edges.(e.Input.dst) <- e :: in_edges.(e.Input.dst);
        out_edges.(e.Input.src) <- e :: out_edges.(e.Input.src))
      loop.Input.edges;
    (* Task state. *)
    let start_time = Array.make ntasks (-1) in
    let finish_time = Array.make ntasks (-1) in
    let completed = Array.make ntasks false in
    let generation = Array.make ntasks 0 in
    let min_restart = Array.make ntasks 0 in
    let assigned_core = Array.make ntasks (-1) in  (* B-core slot index *)
    let arrival = Array.make ntasks (-1) in
    (* Cores. *)
    let core_free = Array.make n 0 in
    let b_cores = Array.of_list assignment.Dswp.Planner.b_cores in
    let m = Array.length b_cores in
    let fifo : int Simcore.Deque.t array =
      Array.init m (fun _ -> Simcore.Deque.create ())  (* in-queue contents *)
    in
    let in_occ = Array.make m 0 in
    let out_occ = Array.make m 0 in
    let enq_work = Array.make m 0 in
    let b_running = Array.make m None in
    let b_done_count = Array.make m 0 in
    (* Metrics registry: the run's counters/gauges live here instead of
       ad-hoc refs, so an exporter can snapshot them by name.  Handles
       are bound once; bumping one is a mutable-field write, no lookup
       in the hot path. *)
    let metrics = match metrics with Some mx -> mx | None -> Obs.Metrics.create () in
    let misspec_delayed = Obs.Metrics.counter metrics "misspec_delayed" in
    let squash_count = Obs.Metrics.counter metrics "squashes" in
    let busy_a = Obs.Metrics.counter metrics "busy/A" in
    let busy_b = Obs.Metrics.counter metrics "busy/B" in
    let busy_c = Obs.Metrics.counter metrics "busy/C" in
    let busy_of_phase tid =
      match phase tid with Ir.Task.A -> busy_a | Ir.Task.B -> busy_b | Ir.Task.C -> busy_c
    in
    let in_gauge = Obs.Metrics.gauge metrics "in_queue_occupancy" in
    let out_gauge = Obs.Metrics.gauge metrics "out_queue_occupancy" in
    let occ_series =
      if Obs.Metrics.sampling metrics then
        Some
          ( Array.init m (fun s -> Obs.Metrics.series metrics (Printf.sprintf "in_queue/%d" s)),
            Array.init m (fun s -> Obs.Metrics.series metrics (Printf.sprintf "out_queue/%d" s))
          )
      else None
    in
    let observing = Obs.Sink.enabled obs in
    let a_running = ref None in
    let c_running = ref false in
    let a_state = ref (if iters = 0 then ADone else ARun 0) in
    let dispatch_done = Array.make iters (-1) in
    let committed = Array.make iters false in
    let c_next = ref 0 in
    let busy = Array.make n 0 in
    let sched_rev = ref [] in
    let physical_core tid =
      match phase tid with
      | Ir.Task.A -> assignment.Dswp.Planner.a_core
      | Ir.Task.C -> assignment.Dswp.Planner.c_core
      | Ir.Task.B -> b_cores.(assigned_core.(tid))
    in
    let record_completion tid =
      sched_rev :=
        {
          s_task = tid;
          s_core = physical_core tid;
          s_start = start_time.(tid);
          s_finish = finish_time.(tid);
        }
        :: !sched_rev
    in
    let events : event Simcore.Heap.t = Simcore.Heap.create () in
    let now = ref 0 in
    (* Occupancy bookkeeping: the gauges carry the high-water marks the
       result reports; series (when sampling) and queue events (when a
       sink listens) ride along on the same call. *)
    let note_in_occ slot =
      Obs.Metrics.observe in_gauge in_occ.(slot);
      match occ_series with
      | Some (in_s, _) -> Obs.Metrics.sample in_s.(slot) ~time:!now in_occ.(slot)
      | None -> ()
    in
    let note_out_occ slot =
      Obs.Metrics.observe out_gauge out_occ.(slot);
      match occ_series with
      | Some (_, out_s) -> Obs.Metrics.sample out_s.(slot) ~time:!now out_occ.(slot)
      | None -> ()
    in
    let push_finish tid =
      Simcore.Heap.add events ~prio:finish_time.(tid) (Finish (tid, generation.(tid)))
    in
    (* Wakes are deduplicated: a blocked task re-requests the same wake
       time on every sweep, and without the filter the heap grows
       quadratically. *)
    let pending_wakes : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let push_wake t =
      if t > !now && not (Hashtbl.mem pending_wakes t) then begin
        Hashtbl.add pending_wakes t ();
        Simcore.Heap.add events ~prio:t Wake
      end
    in
    (* Constraint a single edge puts on its consumer's start time.
       Returns None when the producer is not far enough along: finished
       (default), or merely started when eager forwarding is on. *)
    let constraint_of (e : Input.edge) =
      let p = e.Input.src in
      if policy.forwarding then begin
        if start_time.(p) < 0 then None
        else
          Some (max 0 (start_time.(p) + e.Input.src_offset + lat - e.Input.dst_offset))
      end
      else if completed.(p) then Some (finish_time.(p) + lat)
      else None
    in
    (* Which in-edges gate the *start* of a consumer: synchronized edges
       always; speculated edges under Serialize — and, under Squash, when
       the consumer is not a phase-B task.  The serial stages run on
       unversioned state and have no re-execution path (an A task's
       dispatches and a C task's commits cannot be rolled back), so
       speculation into them serializes on occurrence; only the parallel
       B stage runs eagerly and squashes. *)
    let gating (e : Input.edge) =
      (not e.Input.speculated) || policy.misspec = Serialize
      || phase e.Input.dst <> Ir.Task.B
    in
    (* Compute the earliest legal start of a task given a base time, or
       None if some gating producer is not ready.  Also reports whether a
       speculated edge pushed the time. *)
    let ready_time tid base =
      let rec go acc acc_nonspec = function
        | [] -> Some (acc, acc_nonspec)
        | e :: rest ->
          if gating e then (
            match constraint_of e with
            | None -> None
            | Some c ->
              let acc = max acc c in
              let acc_nonspec = if e.Input.speculated then acc_nonspec else max acc_nonspec c in
              go acc acc_nonspec rest)
          else go acc acc_nonspec rest
      in
      match go base base in_edges.(tid) with
      | None -> None
      | Some (t, t_nonspec) -> Some (max t min_restart.(tid), t_nonspec)
    in
    let start_task tid core t =
      start_time.(tid) <- t;
      finish_time.(tid) <- t + work tid;
      busy.(core) <- busy.(core) + work tid;
      Obs.Metrics.add (busy_of_phase tid) (work tid);
      if observing then
        Obs.Sink.emit obs
          (Obs.Event.Task_start
             {
               time = t;
               task = tid;
               core;
               phase = phase_letter (phase tid);
               iteration = iteration tid;
               work = work tid;
             });
      push_finish tid
    in
    (* Squash a task (and transitively any started consumer of it).
       Only phase-B tasks ever get here: speculated edges into A or C
       gate their consumer's start instead (see gating), and the
       transitive walk below skips non-B destinations for the same
       reason — they started only after this producer's first finish,
       through a gating edge. *)
    let rec squash tid =
      if start_time.(tid) >= 0 && not committed.(iteration tid) then begin
        Obs.Metrics.incr squash_count;
        generation.(tid) <- generation.(tid) + 1;
        List.iter
          (fun (e : Input.edge) ->
            if phase e.Input.dst = Ir.Task.B then squash e.Input.dst)
          out_edges.(tid);
        (match phase tid with
        | Ir.Task.B ->
          let slot = assigned_core.(tid) in
          let core = b_cores.(slot) in
          (match b_running.(slot) with
          | Some r when r = tid ->
            (* Aborted mid-run: the core only spent [!now - start] on the
               doomed attempt.  start_task charged the full work up
               front, so roll back the not-yet-executed remainder —
               otherwise per-core busy (charged again on the re-run)
               would exceed the span. *)
            let elapsed = !now - start_time.(tid) in
            busy.(core) <- busy.(core) - (work tid - elapsed);
            Obs.Metrics.add (busy_of_phase tid) (-(work tid - elapsed));
            if observing then
              Obs.Sink.emit obs
                (Obs.Event.Task_squash { time = !now; task = tid; core; elapsed });
            b_running.(slot) <- None;
            core_free.(core) <- !now
          | _ ->
            (* Already finished: the whole run was executed (its full
               work stays in busy as genuine waste); withdraw its
               out-queue entry and put its work back into the
               outstanding-work metric (a running task never left it). *)
            if completed.(tid) then begin
              out_occ.(slot) <- out_occ.(slot) - 1;
              note_out_occ slot;
              enq_work.(slot) <- enq_work.(slot) + work tid;
              if observing then begin
                Obs.Sink.emit obs
                  (Obs.Event.Queue_pop
                     {
                       time = !now;
                       queue = Obs.Event.Out_queue;
                       slot;
                       occupancy = out_occ.(slot);
                       task = tid;
                     });
                Obs.Sink.emit obs
                  (Obs.Event.Task_squash { time = !now; task = tid; core; elapsed = work tid })
              end
            end);
          (* Back to the head of its in-queue for re-execution.  The
             re-insert may push occupancy past queue_capacity for a
             moment — the squashed task reclaims the slot the capacity
             check released when it issued; only fresh dispatches from A
             respect the bound.  The high-water mark must see it (the
             oracle allows up to capacity + squashes when re-execution
             happened). *)
          Simcore.Deque.push_front fifo.(slot) tid;
          in_occ.(slot) <- in_occ.(slot) + 1;
          note_in_occ slot;
          if observing then
            Obs.Sink.emit obs
              (Obs.Event.Queue_push
                 {
                   time = !now;
                   queue = Obs.Event.In_queue;
                   slot;
                   occupancy = in_occ.(slot);
                   task = tid;
                 })
        | Ir.Task.A | Ir.Task.C ->
          (* Unreachable: speculation into the serial stages gates their
             start (see gating), so only B tasks are ever squashed. *)
          assert false);
        start_time.(tid) <- -1;
        finish_time.(tid) <- -1;
        completed.(tid) <- false
      end
    in
    let try_start_c () =
      if (not !c_running) && !c_next < iters then begin
        let i = !c_next in
        let v = views.(i) in
        let delivery =
          if v.bs = [] then if dispatch_done.(i) < 0 then None else Some (dispatch_done.(i) + lat)
          else
            List.fold_left
              (fun acc b ->
                match acc with
                | None -> None
                | Some t -> if completed.(b) then Some (max t (finish_time.(b) + lat)) else None)
              (Some 0) v.bs
        in
        match delivery with
        | None -> false
        | Some deliv -> (
          let base = max deliv core_free.(assignment.Dswp.Planner.c_core) in
          let readiness =
            match v.c with None -> Some (base, base) | Some c_tid -> ready_time c_tid base
          in
          match readiness with
          | None -> false
          | Some (t, t_nonspec) ->
            if t > !now then begin
              push_wake t;
              false
            end
            else begin
              (* Commit iteration i: consume the out-queue entries. *)
              List.iter
                (fun b ->
                  let slot = assigned_core.(b) in
                  out_occ.(slot) <- out_occ.(slot) - 1;
                  note_out_occ slot;
                  if observing then
                    Obs.Sink.emit obs
                      (Obs.Event.Queue_pop
                         {
                           time = !now;
                           queue = Obs.Event.Out_queue;
                           slot;
                           occupancy = out_occ.(slot);
                           task = b;
                         }))
                v.bs;
              committed.(i) <- true;
              if observing then
                Obs.Sink.emit obs (Obs.Event.Iter_commit { time = !now; iteration = i });
              incr c_next;
              (match v.c with
              | None -> ()
              | Some c_tid ->
                if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
                start_task c_tid assignment.Dswp.Planner.c_core !now;
                core_free.(assignment.Dswp.Planner.c_core) <- finish_time.(c_tid);
                if work c_tid > 0 then c_running := true
                else begin
                  completed.(c_tid) <- true;
                  record_completion c_tid;
                  if observing then
                    Obs.Sink.emit obs
                      (Obs.Event.Task_finish
                         { time = !now; task = c_tid; core = assignment.Dswp.Planner.c_core })
                end);
              true
            end)
      end
      else false
    in
    let try_start_b slot =
      match b_running.(slot) with
      | Some _ -> false
      | None -> (
        if out_occ.(slot) >= cap then false
        else
          match Simcore.Deque.peek_front fifo.(slot) with
          | None -> false
          | Some tid -> (
            if arrival.(tid) > !now then begin
              push_wake arrival.(tid);
              false
            end
            else
              let base = max arrival.(tid) core_free.(b_cores.(slot)) in
              match ready_time tid base with
              | None -> false
              | Some (t, t_nonspec) ->
                if t > !now then begin
                  push_wake t;
                  false
                end
                else begin
                  ignore (Simcore.Deque.pop_front fifo.(slot));
                  in_occ.(slot) <- in_occ.(slot) - 1;
                  note_in_occ slot;
                  if observing then
                    Obs.Sink.emit obs
                      (Obs.Event.Queue_pop
                         {
                           time = !now;
                           queue = Obs.Event.In_queue;
                           slot;
                           occupancy = in_occ.(slot);
                           task = tid;
                         });
                  (* enq_work keeps counting the running task until it
                     finishes: dispatch balances on outstanding work. *)
                  if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
                  start_task tid b_cores.(slot) !now;
                  core_free.(b_cores.(slot)) <- finish_time.(tid);
                  b_running.(slot) <- Some tid;
                  true
                end))
    in
    let dispatch_b i pending =
      (* Returns the not-yet-dispatched remainder and whether anything
         was dispatched. *)
      let moved = ref false in
      let rec go = function
        | [] -> []
        | b :: rest -> (
          let best = ref (-1) in
          for s = m - 1 downto 0 do
            if in_occ.(s) < cap && (!best < 0 || enq_work.(s) <= enq_work.(!best)) then best := s
          done;
          match !best with
          | -1 -> b :: rest
          | s ->
            Simcore.Deque.push_back fifo.(s) b;
            in_occ.(s) <- in_occ.(s) + 1;
            note_in_occ s;
            enq_work.(s) <- enq_work.(s) + work b;
            assigned_core.(b) <- s;
            arrival.(b) <- !now + lat;
            if observing then begin
              Obs.Sink.emit obs (Obs.Event.Dispatch { time = !now; task = b; slot = s });
              Obs.Sink.emit obs
                (Obs.Event.Queue_push
                   {
                     time = !now;
                     queue = Obs.Event.In_queue;
                     slot = s;
                     occupancy = in_occ.(s);
                     task = b;
                   })
            end;
            moved := true;
            go rest)
      in
      let remaining = go pending in
      if remaining = [] then dispatch_done.(i) <- !now;
      (remaining, !moved)
    in
    let try_advance_a () =
      match !a_state with
      | ADone -> false
      | ADispatch (i, pending) ->
        let remaining, moved = dispatch_b i pending in
        if remaining = [] then begin
          a_state := (if i + 1 < iters then ARun (i + 1) else ADone);
          true
        end
        else begin
          if moved then a_state := ADispatch (i, remaining);
          moved
        end
      | ARun i -> (
        if !a_running <> None then false
        else
          match views.(i).a with
          | None ->
            a_state := ADispatch (i, views.(i).bs);
            true
          | Some tid -> (
            let base = core_free.(assignment.Dswp.Planner.a_core) in
            match ready_time tid base with
            | None -> false
            | Some (t, t_nonspec) ->
              if t > !now then begin
                push_wake t;
                false
              end
              else begin
                if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
                start_task tid assignment.Dswp.Planner.a_core !now;
                core_free.(assignment.Dswp.Planner.a_core) <- finish_time.(tid);
                a_running := Some tid;
                true
              end))
    in
    let schedule_all () =
      let progress = ref true in
      while !progress do
        progress := false;
        if try_start_c () then progress := true;
        for s = 0 to m - 1 do
          if try_start_b s then progress := true
        done;
        if try_advance_a () then progress := true
      done
    in
    schedule_all ();
    let exhausted = ref false in
    while not !exhausted do
      match Simcore.Heap.pop_min events with
      | None -> exhausted := true
      | Some (t, ev) ->
        now := max !now t;
        Hashtbl.remove pending_wakes t;
        (match ev with
        | Wake -> if observing then Obs.Sink.emit obs (Obs.Event.Wake { time = !now })
        | Finish (tid, gen) ->
          if gen = generation.(tid) && start_time.(tid) >= 0 && not completed.(tid) then begin
            completed.(tid) <- true;
            record_completion tid;
            if observing then
              Obs.Sink.emit obs
                (Obs.Event.Task_finish { time = !now; task = tid; core = physical_core tid });
            (match phase tid with
            | Ir.Task.A ->
              a_running := None;
              (match !a_state with
              | ARun i when views.(i).a = Some tid -> a_state := ADispatch (i, views.(i).bs)
              | _ -> ())
            | Ir.Task.B ->
              let slot = assigned_core.(tid) in
              (match b_running.(slot) with
              | Some r when r = tid -> b_running.(slot) <- None
              | _ -> ());
              enq_work.(slot) <- enq_work.(slot) - work tid;
              b_done_count.(slot) <- b_done_count.(slot) + 1;
              out_occ.(slot) <- out_occ.(slot) + 1;
              note_out_occ slot;
              if observing then
                Obs.Sink.emit obs
                  (Obs.Event.Queue_push
                     {
                       time = !now;
                       queue = Obs.Event.Out_queue;
                       slot;
                       occupancy = out_occ.(slot);
                       task = tid;
                     })
            | Ir.Task.C -> c_running := false);
            (* Under Squash, a finishing producer invalidates consumers
               that started too early on a speculated edge. *)
            if policy.misspec = Squash then
              List.iter
                (fun (e : Input.edge) ->
                  if e.Input.speculated
                     && phase e.Input.dst = Ir.Task.B
                     && start_time.(e.Input.dst) >= 0
                     && start_time.(e.Input.dst) < finish_time.(tid)
                     && not committed.(iteration e.Input.dst)
                  then begin
                    squash e.Input.dst;
                    min_restart.(e.Input.dst) <-
                      max min_restart.(e.Input.dst) (finish_time.(tid) + lat)
                  end)
                out_edges.(tid)
          end);
        schedule_all ()
    done;
    let span = Array.fold_left max 0 finish_time in
    let all_done = Array.for_all (fun d -> d) completed in
    if not all_done then
      failwith (Printf.sprintf "Pipeline.run_loop: deadlock in loop %s" loop.Input.name);
    (* A task completed, squashed, and re-run appears twice in the raw
       record; only its last completion is real. *)
    let schedule =
      let seen = Hashtbl.create ntasks in
      List.filter
        (fun e ->
          if Hashtbl.mem seen e.s_task then false
          else begin
            Hashtbl.add seen e.s_task ();
            true
          end)
        !sched_rev
      |> List.rev
    in
    {
      span;
      busy;
      misspec_delayed = Obs.Metrics.value misspec_delayed;
      squashes = Obs.Metrics.value squash_count;
      in_queue_high_water = Obs.Metrics.high_water in_gauge;
      out_queue_high_water = Obs.Metrics.high_water out_gauge;
      b_tasks_per_core = b_done_count;
      schedule;
    }
  end

let run_loop (cfg : Machine.Config.t) ?(policy = default_policy) ?validate ?obs ?metrics
    (loop : Input.loop) =
  let r = simulate_loop cfg ~policy ?obs ?metrics loop in
  let validate = match validate with Some v -> v | None -> !validate_default in
  if validate then Oracle.validate_exn cfg ~policy loop r;
  r

let run cfg ?(policy = default_policy) ?validate ?(obs = Obs.Sink.null) (input : Input.t) =
  let seq = Input.total_work input in
  let loops = ref [] in
  let total =
    List.fold_left
      (fun acc seg ->
        match seg with
        | Input.Serial w -> acc + w
        | Input.Parallel loop ->
          (* Rebase the loop's local event times to program time, and
             bracket them so a whole-program trace shows the loop
             structure. *)
          let loop_obs = Obs.Sink.offset acc obs in
          if Obs.Sink.enabled loop_obs then
            Obs.Sink.emit loop_obs (Obs.Event.Loop_begin { time = 0; loop = loop.Input.name });
          let r = run_loop cfg ~policy ?validate ~obs:loop_obs loop in
          if Obs.Sink.enabled loop_obs then
            Obs.Sink.emit loop_obs
              (Obs.Event.Loop_end { time = r.span; loop = loop.Input.name; span = r.span });
          loops := (loop.Input.name, r) :: !loops;
          acc + r.span)
      0 input.Input.segments
  in
  { total_time = total; sequential_time = seq; loops = List.rev !loops }

let speedup r =
  if r.total_time = 0 then 1.0
  else float_of_int r.sequential_time /. float_of_int r.total_time
