type misspec_policy = Sched.misspec_policy = Serialize | Squash

type policy = Sched.policy = { misspec : misspec_policy; forwarding : bool }

let default_policy = Sched.default_policy

type sched_entry = Sched.sched_entry = {
  s_task : int;
  s_core : int;
  s_start : int;
  s_finish : int;
}

type loop_result = Sched.loop_result = {
  span : int;
  busy : int array;
  misspec_delayed : int;
  squashes : int;
  in_queue_high_water : int;
  out_queue_high_water : int;
  b_tasks_per_core : int array;
  schedule : sched_entry list;
}

type result = {
  total_time : int;
  sequential_time : int;
  loops : (string * loop_result) list;
}

(* Every schedule the simulator emits can be re-checked by Sim.Oracle.
   The default comes from the SIM_VALIDATE environment variable so
   scripts/check.sh (and any CI run) can turn the oracle on for the whole
   process; tests flip the ref directly. *)
let validate_default =
  ref
    (match Sys.getenv_opt "SIM_VALIDATE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let phase_letter = function Ir.Task.A -> 'A' | Ir.Task.B -> 'B' | Ir.Task.C -> 'C'

let sequential_result cfg ?(obs = Obs.Sink.null) (loop : Input.loop) =
  let w = Input.loop_work loop in
  let busy = Array.make cfg.Machine.Config.cores 0 in
  busy.(0) <- w;
  let observing = Obs.Sink.enabled obs in
  let _, schedule =
    Array.fold_left
      (fun (t, acc) (task : Ir.Task.t) ->
        let f = t + task.Ir.Task.work in
        if observing then begin
          Obs.Sink.emit obs
            (Obs.Event.Task_start
               {
                 time = t;
                 task = task.Ir.Task.id;
                 core = 0;
                 phase = phase_letter task.Ir.Task.phase;
                 iteration = task.Ir.Task.iteration;
                 work = task.Ir.Task.work;
               });
          Obs.Sink.emit obs
            (Obs.Event.Task_finish { time = f; task = task.Ir.Task.id; core = 0 })
        end;
        (f, { s_task = task.Ir.Task.id; s_core = 0; s_start = t; s_finish = f } :: acc))
      (0, []) loop.Input.tasks
  in
  {
    span = w;
    busy;
    misspec_delayed = 0;
    squashes = 0;
    in_queue_high_water = 0;
    out_queue_high_water = 0;
    b_tasks_per_core = [||];
    schedule = List.rev schedule;
  }

(* ------------------------------------------------------------------ *)
(* Static per-loop data.

   Everything the inner loop reads that depends only on the loop — task
   attributes, per-iteration views, dependence adjacency — is unpacked
   once into flat immutable int arrays.  Phases are encoded A=0 B=1 C=2,
   absent tasks as -1.  The per-node order of [in_idx]/[out_idx] ranges
   reproduces the historical cons-built adjacency lists (reverse edge
   order), which the squash walk's re-queue order depends on. *)

type static_data = {
  iters : int;
  v_a : int array;  (* iters: A task id or -1 *)
  v_c : int array;  (* iters: C task id or -1 *)
  v_bs : int array;  (* flat B ids, iteration-major, intra-sorted *)
  v_bs_off : int array;  (* iters + 1 segment offsets into v_bs *)
  t_work : int array;
  t_phase : int array;
  t_iter : int array;
  e_src : int array;
  e_dst : int array;
  e_spec : int array;  (* 0/1 *)
  e_soff : int array;
  e_doff : int array;
  in_off : int array;  (* ntasks + 1 *)
  in_idx : int array;  (* edge indices, consumer-major *)
  out_off : int array;
  out_idx : int array;
}

let phase_code = function Ir.Task.A -> 0 | Ir.Task.B -> 1 | Ir.Task.C -> 2

let build_static (loop : Input.loop) =
  let ntasks = Array.length loop.Input.tasks in
  let iters = Input.iterations loop in
  let t_work = Array.make (max 1 ntasks) 0 in
  let t_phase = Array.make (max 1 ntasks) 0 in
  let t_iter = Array.make (max 1 ntasks) 0 in
  Array.iteri
    (fun i (t : Ir.Task.t) ->
      t_work.(i) <- t.Ir.Task.work;
      t_phase.(i) <- phase_code t.Ir.Task.phase;
      t_iter.(i) <- t.Ir.Task.iteration)
    loop.Input.tasks;
  let v_a = Array.make (max 1 iters) (-1) in
  let v_c = Array.make (max 1 iters) (-1) in
  let bs = Array.make (max 1 iters) [] in
  Array.iter
    (fun (t : Ir.Task.t) ->
      let i = t.Ir.Task.iteration in
      match t.Ir.Task.phase with
      | Ir.Task.A -> v_a.(i) <- t.Ir.Task.id
      | Ir.Task.C -> v_c.(i) <- t.Ir.Task.id
      | Ir.Task.B -> bs.(i) <- t.Ir.Task.id :: bs.(i))
    loop.Input.tasks;
  let v_bs_off = Array.make (iters + 1) 0 in
  for i = 0 to iters - 1 do
    v_bs_off.(i + 1) <- v_bs_off.(i) + List.length bs.(i)
  done;
  let v_bs = Array.make (max 1 v_bs_off.(iters)) 0 in
  for i = 0 to iters - 1 do
    (* Stable sort by intra, ties in cons order — exactly the order the
       per-iteration views have always used. *)
    let sorted =
      List.sort
        (fun x y ->
          compare loop.Input.tasks.(x).Ir.Task.intra loop.Input.tasks.(y).Ir.Task.intra)
        bs.(i)
    in
    let k = ref v_bs_off.(i) in
    List.iter
      (fun b ->
        v_bs.(!k) <- b;
        incr k)
      sorted
  done;
  let edges = Array.of_list loop.Input.edges in
  let ne = Array.length edges in
  let e_src = Array.make (max 1 ne) 0 in
  let e_dst = Array.make (max 1 ne) 0 in
  let e_spec = Array.make (max 1 ne) 0 in
  let e_soff = Array.make (max 1 ne) 0 in
  let e_doff = Array.make (max 1 ne) 0 in
  Array.iteri
    (fun k (e : Input.edge) ->
      e_src.(k) <- e.Input.src;
      e_dst.(k) <- e.Input.dst;
      e_spec.(k) <- (if e.Input.speculated then 1 else 0);
      e_soff.(k) <- e.Input.src_offset;
      e_doff.(k) <- e.Input.dst_offset)
    edges;
  let in_off = Array.make (ntasks + 1) 0 in
  let out_off = Array.make (ntasks + 1) 0 in
  for k = 0 to ne - 1 do
    in_off.(e_dst.(k) + 1) <- in_off.(e_dst.(k) + 1) + 1;
    out_off.(e_src.(k) + 1) <- out_off.(e_src.(k) + 1) + 1
  done;
  for v = 0 to ntasks - 1 do
    in_off.(v + 1) <- in_off.(v + 1) + in_off.(v);
    out_off.(v + 1) <- out_off.(v + 1) + out_off.(v)
  done;
  let in_idx = Array.make (max 1 ne) 0 in
  let out_idx = Array.make (max 1 ne) 0 in
  (* Fill each node's range from its end so that reading left-to-right
     yields reverse edge order (the historical [e :: acc] order). *)
  let in_cur = Array.init ntasks (fun v -> in_off.(v + 1)) in
  let out_cur = Array.init ntasks (fun v -> out_off.(v + 1)) in
  for k = 0 to ne - 1 do
    let d = e_dst.(k) in
    in_cur.(d) <- in_cur.(d) - 1;
    in_idx.(in_cur.(d)) <- k;
    let s = e_src.(k) in
    out_cur.(s) <- out_cur.(s) - 1;
    out_idx.(out_cur.(s)) <- k
  done;
  {
    iters;
    v_a;
    v_c;
    v_bs;
    v_bs_off;
    t_work;
    t_phase;
    t_iter;
    e_src;
    e_dst;
    e_spec;
    e_soff;
    e_doff;
    in_off;
    in_idx;
    out_off;
    out_idx;
  }

(* The static data depends only on the loop, not on the machine, yet a
   thread sweep re-enters run_loop once per core count with the same
   loop value.  Memoize per loop, keyed by physical identity — a
   structural duplicate would only recompute identical arrays, never a
   wrong result.  The mutex makes the cache safe when sweeps run
   concurrently in several domains (the cached arrays are immutable
   after construction); the size cap keeps it from growing without
   bound across long sessions. *)
module Loop_tbl = Hashtbl.Make (struct
  type t = Input.loop

  let equal = ( == )
  let hash = Hashtbl.hash
end)

let static_cache : static_data Loop_tbl.t = Loop_tbl.create 64
let static_lock = Mutex.create ()

let static_data loop =
  Mutex.lock static_lock;
  match Loop_tbl.find_opt static_cache loop with
  | Some v ->
    Mutex.unlock static_lock;
    v
  | None ->
    Mutex.unlock static_lock;
    let v = build_static loop in
    Mutex.lock static_lock;
    if Loop_tbl.length static_cache >= 512 then Loop_tbl.reset static_cache;
    Loop_tbl.replace static_cache loop v;
    Mutex.unlock static_lock;
    v

(* ------------------------------------------------------------------ *)
(* Per-domain scratch.

   The mutable state of one simulation — task times, queue rings, the
   event heap, the completion log — lives in buffers reused across
   iterations and sweep points.  One scratch per domain (no sharing, no
   locks): with several pool domains simulating concurrently, the near
   absence of minor-heap allocation on this path is what keeps them from
   serializing on cross-domain minor-GC barriers. *)

type scratch = {
  arena : Simcore.Arena.t;
  events : Simcore.Iheap.t;
  mutable rings : Simcore.Ring.t array;  (* per-B-slot in-queues *)
  pending_wakes : (int, unit) Hashtbl.t;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        arena = Simcore.Arena.create ();
        events = Simcore.Iheap.create ();
        rings = [||];
        pending_wakes = Hashtbl.create 64;
      })

(* Arena slot assignments (see Simcore.Arena). *)
let slot_start = 0
and slot_finish = 1
and slot_completed = 2
and slot_generation = 3
and slot_min_restart = 4
and slot_assigned = 5
and slot_arrival = 6
and slot_dispatch_done = 7
and slot_committed = 8
and slot_sched = 9
and slot_seen = 10
and slot_gating = 11

let simulate_loop (cfg : Machine.Config.t) ?(policy = default_policy)
    ?(obs = Obs.Sink.null) ?metrics (loop : Input.loop) =
  let n = cfg.Machine.Config.cores in
  let ntasks = Array.length loop.Input.tasks in
  if n <= 1 || ntasks = 0 then sequential_result cfg ~obs loop
  else begin
    let assignment =
      match Dswp.Planner.plan cfg with
      | Some a -> a
      | None -> assert false (* n > 1 *)
    in
    let lat = cfg.Machine.Config.comm_latency in
    let cap = cfg.Machine.Config.queue_capacity in
    let sd = static_data loop in
    let iters = sd.iters in
    let t_work = sd.t_work
    and t_phase = sd.t_phase
    and t_iter = sd.t_iter in
    let a_core = assignment.Dswp.Planner.a_core in
    let c_core = assignment.Dswp.Planner.c_core in
    let scratch = Domain.DLS.get scratch_key in
    let arena = scratch.arena in
    (* Task state (arena scratch; only cells < ntasks are ours). *)
    let start_time = Simcore.Arena.ints_filled arena slot_start ~len:ntasks ~fill:(-1) in
    let finish_time = Simcore.Arena.ints_filled arena slot_finish ~len:ntasks ~fill:(-1) in
    let completed = Simcore.Arena.ints_filled arena slot_completed ~len:ntasks ~fill:0 in
    let generation = Simcore.Arena.ints_filled arena slot_generation ~len:ntasks ~fill:0 in
    let min_restart = Simcore.Arena.ints_filled arena slot_min_restart ~len:ntasks ~fill:0 in
    let assigned_core =
      Simcore.Arena.ints_filled arena slot_assigned ~len:ntasks ~fill:(-1)
    in
    let arrival = Simcore.Arena.ints_filled arena slot_arrival ~len:ntasks ~fill:(-1) in
    (* Cores. *)
    let core_free = Array.make n 0 in
    let b_cores = Array.of_list assignment.Dswp.Planner.b_cores in
    let m = Array.length b_cores in
    if Array.length scratch.rings < m then
      scratch.rings <-
        Array.init m (fun i ->
            if i < Array.length scratch.rings then scratch.rings.(i)
            else Simcore.Ring.create ());
    let fifo = scratch.rings in
    for s = 0 to m - 1 do
      Simcore.Ring.clear fifo.(s)
    done;
    let in_occ = Array.make m 0 in
    let out_occ = Array.make m 0 in
    let enq_work = Array.make m 0 in
    let b_running = Array.make m (-1) in
    let b_done_count = Array.make m 0 in
    (* Per-run gating of edges: synchronized edges always gate their
       consumer's start; speculated edges gate under Serialize — and,
       under Squash, when the consumer is not a phase-B task.  The
       serial stages run on unversioned state and have no re-execution
       path, so speculation into them serializes on occurrence; only
       the parallel B stage runs eagerly and squashes. *)
    let ne = Array.length sd.e_spec in
    let gating = Simcore.Arena.ints arena slot_gating ~len:ne in
    for e = 0 to ne - 1 do
      gating.(e) <-
        (if sd.e_spec.(e) = 0 || policy.misspec = Serialize || t_phase.(sd.e_dst.(e)) <> 1
         then 1
         else 0)
    done;
    (* Metrics registry: the run's counters/gauges live here instead of
       ad-hoc refs, so an exporter can snapshot them by name.  Handles
       are bound once; bumping one is a mutable-field write, no lookup
       in the hot path. *)
    let metrics = match metrics with Some mx -> mx | None -> Obs.Metrics.create () in
    let misspec_delayed = Obs.Metrics.counter metrics "misspec_delayed" in
    let squash_count = Obs.Metrics.counter metrics "squashes" in
    let busy_a = Obs.Metrics.counter metrics "busy/A" in
    let busy_b = Obs.Metrics.counter metrics "busy/B" in
    let busy_c = Obs.Metrics.counter metrics "busy/C" in
    let busy_of_phase tid =
      match t_phase.(tid) with 0 -> busy_a | 1 -> busy_b | _ -> busy_c
    in
    let in_gauge = Obs.Metrics.gauge metrics "in_queue_occupancy" in
    let out_gauge = Obs.Metrics.gauge metrics "out_queue_occupancy" in
    let occ_series =
      if Obs.Metrics.sampling metrics then
        Some
          ( Array.init m (fun s -> Obs.Metrics.series metrics (Printf.sprintf "in_queue/%d" s)),
            Array.init m (fun s -> Obs.Metrics.series metrics (Printf.sprintf "out_queue/%d" s))
          )
      else None
    in
    let observing = Obs.Sink.enabled obs in
    let a_running = ref false in
    let c_running = ref false in
    (* Phase-A driver state: mode 0 = running iteration [a_iter]'s A
       task, 1 = dispatching its B tasks ([a_cursor] walks the v_bs
       segment), 2 = done.  Flat ints where an ARun/ADispatch/ADone
       variant used to be allocated on every transition. *)
    let a_mode = ref (if iters = 0 then 2 else 0) in
    let a_iter = ref 0 in
    let a_cursor = ref 0 in
    let dispatch_done =
      Simcore.Arena.ints_filled arena slot_dispatch_done ~len:iters ~fill:(-1)
    in
    let committed = Simcore.Arena.ints_filled arena slot_committed ~len:iters ~fill:0 in
    let c_next = ref 0 in
    let busy = Array.make n 0 in
    (* Completion log: flat quadruples (task, core, start, finish); the
       schedule list is materialized once at the end. *)
    let sched_buf = ref (Simcore.Arena.ints arena slot_sched ~len:4096) in
    let sched_len = ref 0 in
    let physical_core tid =
      match t_phase.(tid) with
      | 0 -> a_core
      | 2 -> c_core
      | _ -> b_cores.(assigned_core.(tid))
    in
    let record_completion tid =
      let need = !sched_len + 4 in
      if need > Array.length !sched_buf then begin
        let bigger = Simcore.Arena.ints arena slot_sched ~len:(2 * need) in
        Array.blit !sched_buf 0 bigger 0 !sched_len;
        sched_buf := bigger
      end;
      let b = !sched_buf in
      b.(!sched_len) <- tid;
      b.(!sched_len + 1) <- physical_core tid;
      b.(!sched_len + 2) <- start_time.(tid);
      b.(!sched_len + 3) <- finish_time.(tid);
      sched_len := !sched_len + 4
    in
    (* Event queue: payload a = task id for a Finish (with generation in
       payload b), or -1 for a bare Wake. *)
    let events = scratch.events in
    Simcore.Iheap.clear events;
    let now = ref 0 in
    (* Occupancy bookkeeping: the gauges carry the high-water marks the
       result reports; series (when sampling) and queue events (when a
       sink listens) ride along on the same call. *)
    let note_in_occ slot =
      Obs.Metrics.observe in_gauge in_occ.(slot);
      match occ_series with
      | Some (in_s, _) -> Obs.Metrics.sample in_s.(slot) ~time:!now in_occ.(slot)
      | None -> ()
    in
    let note_out_occ slot =
      Obs.Metrics.observe out_gauge out_occ.(slot);
      match occ_series with
      | Some (_, out_s) -> Obs.Metrics.sample out_s.(slot) ~time:!now out_occ.(slot)
      | None -> ()
    in
    let push_finish tid =
      Simcore.Iheap.add events ~prio:finish_time.(tid) tid generation.(tid)
    in
    (* Wakes are deduplicated: a blocked task re-requests the same wake
       time on every sweep, and without the filter the heap grows
       quadratically. *)
    let pending_wakes = scratch.pending_wakes in
    Hashtbl.reset pending_wakes;
    let push_wake t =
      if t > !now && not (Hashtbl.mem pending_wakes t) then begin
        Hashtbl.add pending_wakes t ();
        Simcore.Iheap.add events ~prio:t (-1) 0
      end
    in
    (* Constraint edge [e] puts on its consumer's start time, or -1 when
       the producer is not far enough along: finished (default), or
       merely started when eager forwarding is on. *)
    let constraint_of e =
      let p = sd.e_src.(e) in
      if policy.forwarding then begin
        if start_time.(p) < 0 then -1
        else
          let c = start_time.(p) + sd.e_soff.(e) + lat - sd.e_doff.(e) in
          if c > 0 then c else 0
      end
      else if completed.(p) = 1 then finish_time.(p) + lat
      else -1
    in
    (* Earliest legal start of a task given a base time.  Results land
       in [rt_t] (clamped by min_restart) and [rt_ns] (the non-
       speculated bound, for misspec accounting); returns false when
       some gating producer is not ready.  A tail-recursive scan over
       the CSR in-edge range — no options, no tuples, no closures per
       call. *)
    let rt_t = ref 0 in
    let rt_ns = ref 0 in
    let rec ready_scan tid k hi acc acc_ns =
      if k >= hi then begin
        rt_t := (if acc > min_restart.(tid) then acc else min_restart.(tid));
        rt_ns := acc_ns;
        true
      end
      else begin
        let e = sd.in_idx.(k) in
        if gating.(e) = 1 then begin
          let c = constraint_of e in
          if c < 0 then false
          else
            ready_scan tid (k + 1) hi
              (if c > acc then c else acc)
              (if sd.e_spec.(e) = 0 && c > acc_ns then c else acc_ns)
        end
        else ready_scan tid (k + 1) hi acc acc_ns
      end
    in
    let ready_time tid base = ready_scan tid sd.in_off.(tid) sd.in_off.(tid + 1) base base in
    let start_task tid core t =
      start_time.(tid) <- t;
      finish_time.(tid) <- t + t_work.(tid);
      busy.(core) <- busy.(core) + t_work.(tid);
      Obs.Metrics.add (busy_of_phase tid) t_work.(tid);
      if observing then
        Obs.Sink.emit obs
          (Obs.Event.Task_start
             {
               time = t;
               task = tid;
               core;
               phase = (match t_phase.(tid) with 0 -> 'A' | 1 -> 'B' | _ -> 'C');
               iteration = t_iter.(tid);
               work = t_work.(tid);
             });
      push_finish tid
    in
    (* Squash a task (and transitively any started consumer of it).
       Only phase-B tasks ever get here: speculated edges into A or C
       gate their consumer's start instead (see gating), and the
       transitive walk below skips non-B destinations for the same
       reason — they started only after this producer's first finish,
       through a gating edge. *)
    let rec squash tid =
      if start_time.(tid) >= 0 && committed.(t_iter.(tid)) = 0 then begin
        Obs.Metrics.incr squash_count;
        generation.(tid) <- generation.(tid) + 1;
        for k = sd.out_off.(tid) to sd.out_off.(tid + 1) - 1 do
          let dst = sd.e_dst.(sd.out_idx.(k)) in
          if t_phase.(dst) = 1 then squash dst
        done;
        if t_phase.(tid) = 1 then begin
          let slot = assigned_core.(tid) in
          let core = b_cores.(slot) in
          if b_running.(slot) = tid then begin
            (* Aborted mid-run: the core only spent [!now - start] on the
               doomed attempt.  start_task charged the full work up
               front, so roll back the not-yet-executed remainder —
               otherwise per-core busy (charged again on the re-run)
               would exceed the span. *)
            let elapsed = !now - start_time.(tid) in
            busy.(core) <- busy.(core) - (t_work.(tid) - elapsed);
            Obs.Metrics.add (busy_of_phase tid) (-(t_work.(tid) - elapsed));
            if observing then
              Obs.Sink.emit obs
                (Obs.Event.Task_squash { time = !now; task = tid; core; elapsed });
            b_running.(slot) <- -1;
            core_free.(core) <- !now
          end
          else if completed.(tid) = 1 then begin
            (* Already finished: the whole run was executed (its full
               work stays in busy as genuine waste); withdraw its
               out-queue entry and put its work back into the
               outstanding-work metric (a running task never left it). *)
            out_occ.(slot) <- out_occ.(slot) - 1;
            note_out_occ slot;
            enq_work.(slot) <- enq_work.(slot) + t_work.(tid);
            if observing then begin
              Obs.Sink.emit obs
                (Obs.Event.Queue_pop
                   {
                     time = !now;
                     queue = Obs.Event.Out_queue;
                     slot;
                     occupancy = out_occ.(slot);
                     task = tid;
                   });
              Obs.Sink.emit obs
                (Obs.Event.Task_squash
                   { time = !now; task = tid; core; elapsed = t_work.(tid) })
            end
          end;
          (* Back to the head of its in-queue for re-execution.  The
             re-insert may push occupancy past queue_capacity for a
             moment — the squashed task reclaims the slot the capacity
             check released when it issued; only fresh dispatches from A
             respect the bound.  The high-water mark must see it (the
             oracle allows up to capacity + squashes when re-execution
             happened). *)
          Simcore.Ring.push_front fifo.(slot) tid;
          in_occ.(slot) <- in_occ.(slot) + 1;
          note_in_occ slot;
          if observing then
            Obs.Sink.emit obs
              (Obs.Event.Queue_push
                 {
                   time = !now;
                   queue = Obs.Event.In_queue;
                   slot;
                   occupancy = in_occ.(slot);
                   task = tid;
                 })
        end
        else
          (* Unreachable: speculation into the serial stages gates their
             start (see gating), so only B tasks are ever squashed. *)
          assert false;
        start_time.(tid) <- -1;
        finish_time.(tid) <- -1;
        completed.(tid) <- 0
      end
    in
    (* Max of finish_time + lat over a committed iteration's B tasks, or
       -1 while any of them is still incomplete. *)
    let rec delivery_scan k hi acc =
      if k >= hi then acc
      else begin
        let b = sd.v_bs.(k) in
        if completed.(b) = 0 then -1
        else
          let f = finish_time.(b) + lat in
          delivery_scan (k + 1) hi (if f > acc then f else acc)
      end
    in
    let try_start_c () =
      if (not !c_running) && !c_next < iters then begin
        let i = !c_next in
        let bs_lo = sd.v_bs_off.(i) and bs_hi = sd.v_bs_off.(i + 1) in
        let delivery =
          if bs_lo = bs_hi then
            if dispatch_done.(i) < 0 then -1 else dispatch_done.(i) + lat
          else delivery_scan bs_lo bs_hi 0
        in
        if delivery < 0 then false
        else begin
          let base = if delivery > core_free.(c_core) then delivery else core_free.(c_core) in
          let c_tid = sd.v_c.(i) in
          let ready =
            if c_tid < 0 then begin
              rt_t := base;
              rt_ns := base;
              true
            end
            else ready_time c_tid base
          in
          if not ready then false
          else begin
            let t = !rt_t and t_nonspec = !rt_ns in
            if t > !now then begin
              push_wake t;
              false
            end
            else begin
              (* Commit iteration i: consume the out-queue entries. *)
              for k = bs_lo to bs_hi - 1 do
                let b = sd.v_bs.(k) in
                let slot = assigned_core.(b) in
                out_occ.(slot) <- out_occ.(slot) - 1;
                note_out_occ slot;
                if observing then
                  Obs.Sink.emit obs
                    (Obs.Event.Queue_pop
                       {
                         time = !now;
                         queue = Obs.Event.Out_queue;
                         slot;
                         occupancy = out_occ.(slot);
                         task = b;
                       })
              done;
              committed.(i) <- 1;
              if observing then
                Obs.Sink.emit obs (Obs.Event.Iter_commit { time = !now; iteration = i });
              incr c_next;
              if c_tid >= 0 then begin
                if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
                start_task c_tid c_core !now;
                core_free.(c_core) <- finish_time.(c_tid);
                if t_work.(c_tid) > 0 then c_running := true
                else begin
                  completed.(c_tid) <- 1;
                  record_completion c_tid;
                  if observing then
                    Obs.Sink.emit obs
                      (Obs.Event.Task_finish { time = !now; task = c_tid; core = c_core })
                end
              end;
              true
            end
          end
        end
      end
      else false
    in
    let try_start_b slot =
      if b_running.(slot) >= 0 then false
      else if out_occ.(slot) >= cap then false
      else if Simcore.Ring.is_empty fifo.(slot) then false
      else begin
        let tid = Simcore.Ring.peek_front_exn fifo.(slot) in
        if arrival.(tid) > !now then begin
          push_wake arrival.(tid);
          false
        end
        else begin
          let base =
            if arrival.(tid) > core_free.(b_cores.(slot)) then arrival.(tid)
            else core_free.(b_cores.(slot))
          in
          if not (ready_time tid base) then false
          else begin
            let t = !rt_t and t_nonspec = !rt_ns in
            if t > !now then begin
              push_wake t;
              false
            end
            else begin
              let _ = Simcore.Ring.pop_front_exn fifo.(slot) in
              in_occ.(slot) <- in_occ.(slot) - 1;
              note_in_occ slot;
              if observing then
                Obs.Sink.emit obs
                  (Obs.Event.Queue_pop
                     {
                       time = !now;
                       queue = Obs.Event.In_queue;
                       slot;
                       occupancy = in_occ.(slot);
                       task = tid;
                     });
              (* enq_work keeps counting the running task until it
                 finishes: dispatch balances on outstanding work. *)
              if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
              start_task tid b_cores.(slot) !now;
              core_free.(b_cores.(slot)) <- finish_time.(tid);
              b_running.(slot) <- tid;
              true
            end
          end
        end
      end
    in
    (* Least-loaded B slot with in-queue space, scanning high to low so
       ties go to the lowest slot (the historical scan order). *)
    let rec best_slot s best =
      if s < 0 then best
      else
        best_slot (s - 1)
          (if in_occ.(s) < cap && (best < 0 || enq_work.(s) <= enq_work.(best)) then s
           else best)
    in
    (* Dispatch iteration [i]'s not-yet-dispatched B tasks (the v_bs
       segment from [a_cursor]).  Returns 2 when the segment is fully
       dispatched, 1 when stalled after moving at least one task, 0 when
       stalled without moving any. *)
    let rec dispatch_items i cur hi moved =
      if cur >= hi then begin
        dispatch_done.(i) <- !now;
        a_cursor := cur;
        2
      end
      else begin
        let b = sd.v_bs.(cur) in
        let s = best_slot (m - 1) (-1) in
        if s < 0 then begin
          a_cursor := cur;
          if moved then 1 else 0
        end
        else begin
          Simcore.Ring.push_back fifo.(s) b;
          in_occ.(s) <- in_occ.(s) + 1;
          note_in_occ s;
          enq_work.(s) <- enq_work.(s) + t_work.(b);
          assigned_core.(b) <- s;
          arrival.(b) <- !now + lat;
          if observing then begin
            Obs.Sink.emit obs (Obs.Event.Dispatch { time = !now; task = b; slot = s });
            Obs.Sink.emit obs
              (Obs.Event.Queue_push
                 {
                   time = !now;
                   queue = Obs.Event.In_queue;
                   slot = s;
                   occupancy = in_occ.(s);
                   task = b;
                 })
          end;
          dispatch_items i (cur + 1) hi true
        end
      end
    in
    let try_advance_a () =
      match !a_mode with
      | 2 -> false
      | 1 ->
        let i = !a_iter in
        let code = dispatch_items i !a_cursor sd.v_bs_off.(i + 1) false in
        if code = 2 then begin
          if i + 1 < iters then begin
            a_iter := i + 1;
            a_mode := 0
          end
          else a_mode := 2;
          true
        end
        else code = 1
      | _ ->
        (* mode 0: run iteration [a_iter]'s A task, if any *)
        if !a_running then false
        else begin
          let i = !a_iter in
          let a_tid = sd.v_a.(i) in
          if a_tid < 0 then begin
            a_mode := 1;
            a_cursor := sd.v_bs_off.(i);
            true
          end
          else if not (ready_time a_tid core_free.(a_core)) then false
          else begin
            let t = !rt_t and t_nonspec = !rt_ns in
            if t > !now then begin
              push_wake t;
              false
            end
            else begin
              if t > t_nonspec then Obs.Metrics.incr misspec_delayed;
              start_task a_tid a_core !now;
              core_free.(a_core) <- finish_time.(a_tid);
              a_running := true;
              true
            end
          end
        end
    in
    let progress = ref true in
    let schedule_all () =
      progress := true;
      while !progress do
        progress := false;
        if try_start_c () then progress := true;
        for s = 0 to m - 1 do
          if try_start_b s then progress := true
        done;
        if try_advance_a () then progress := true
      done
    in
    schedule_all ();
    let exhausted = ref false in
    while not !exhausted do
      if not (Simcore.Iheap.pop events) then exhausted := true
      else begin
        let t = Simcore.Iheap.popped_prio events in
        let tid = Simcore.Iheap.popped_a events in
        let gen = Simcore.Iheap.popped_b events in
        now := (if t > !now then t else !now);
        Hashtbl.remove pending_wakes t;
        if tid < 0 then begin
          if observing then Obs.Sink.emit obs (Obs.Event.Wake { time = !now })
        end
        else if gen = generation.(tid) && start_time.(tid) >= 0 && completed.(tid) = 0
        then begin
          completed.(tid) <- 1;
          record_completion tid;
          if observing then
            Obs.Sink.emit obs
              (Obs.Event.Task_finish { time = !now; task = tid; core = physical_core tid });
          (match t_phase.(tid) with
          | 0 ->
            a_running := false;
            if !a_mode = 0 && sd.v_a.(!a_iter) = tid then begin
              a_mode := 1;
              a_cursor := sd.v_bs_off.(!a_iter)
            end
          | 1 ->
            let slot = assigned_core.(tid) in
            if b_running.(slot) = tid then b_running.(slot) <- -1;
            enq_work.(slot) <- enq_work.(slot) - t_work.(tid);
            b_done_count.(slot) <- b_done_count.(slot) + 1;
            out_occ.(slot) <- out_occ.(slot) + 1;
            note_out_occ slot;
            if observing then
              Obs.Sink.emit obs
                (Obs.Event.Queue_push
                   {
                     time = !now;
                     queue = Obs.Event.Out_queue;
                     slot;
                     occupancy = out_occ.(slot);
                     task = tid;
                   })
          | _ -> c_running := false);
          (* Under Squash, a finishing producer invalidates consumers
             that started too early on a speculated edge. *)
          if policy.misspec = Squash then
            for k = sd.out_off.(tid) to sd.out_off.(tid + 1) - 1 do
              let e = sd.out_idx.(k) in
              let dst = sd.e_dst.(e) in
              if sd.e_spec.(e) = 1
                 && t_phase.(dst) = 1
                 && start_time.(dst) >= 0
                 && start_time.(dst) < finish_time.(tid)
                 && committed.(t_iter.(dst)) = 0
              then begin
                squash dst;
                if finish_time.(tid) + lat > min_restart.(dst) then
                  min_restart.(dst) <- finish_time.(tid) + lat
              end
            done
        end;
        schedule_all ()
      end
    done;
    let span = ref 0 in
    let all_done = ref true in
    for tid = 0 to ntasks - 1 do
      if finish_time.(tid) > !span then span := finish_time.(tid);
      if completed.(tid) = 0 then all_done := false
    done;
    if not !all_done then
      failwith (Printf.sprintf "Pipeline.run_loop: deadlock in loop %s" loop.Input.name);
    (* A task completed, squashed, and re-run appears twice in the raw
       log; only its last completion is real.  Scan newest-to-oldest,
       keep first sight of each task, prepend — the kept entries come
       out in completion order. *)
    let schedule =
      let seen = Simcore.Arena.ints_filled arena slot_seen ~len:ntasks ~fill:0 in
      let b = !sched_buf in
      let acc = ref [] in
      let k = ref (!sched_len - 4) in
      while !k >= 0 do
        let tid = b.(!k) in
        if seen.(tid) = 0 then begin
          seen.(tid) <- 1;
          acc :=
            { s_task = tid; s_core = b.(!k + 1); s_start = b.(!k + 2); s_finish = b.(!k + 3) }
            :: !acc
        end;
        k := !k - 4
      done;
      !acc
    in
    {
      span = !span;
      busy;
      misspec_delayed = Obs.Metrics.value misspec_delayed;
      squashes = Obs.Metrics.value squash_count;
      in_queue_high_water = Obs.Metrics.high_water in_gauge;
      out_queue_high_water = Obs.Metrics.high_water out_gauge;
      b_tasks_per_core = b_done_count;
      schedule;
    }
  end

let run_loop (cfg : Machine.Config.t) ?(policy = default_policy) ?validate ?obs ?metrics
    (loop : Input.loop) =
  let r = simulate_loop cfg ~policy ?obs ?metrics loop in
  let validate = match validate with Some v -> v | None -> !validate_default in
  if validate then Oracle.validate_exn cfg ~policy loop r;
  r

let run cfg ?(policy = default_policy) ?validate ?(obs = Obs.Sink.null) (input : Input.t) =
  let seq = Input.total_work input in
  let loops = ref [] in
  let total =
    List.fold_left
      (fun acc seg ->
        match seg with
        | Input.Serial w -> acc + w
        | Input.Parallel loop ->
          (* Rebase the loop's local event times to program time, and
             bracket them so a whole-program trace shows the loop
             structure. *)
          let loop_obs = Obs.Sink.offset acc obs in
          if Obs.Sink.enabled loop_obs then
            Obs.Sink.emit loop_obs (Obs.Event.Loop_begin { time = 0; loop = loop.Input.name });
          let r = run_loop cfg ~policy ?validate ~obs:loop_obs loop in
          if Obs.Sink.enabled loop_obs then
            Obs.Sink.emit loop_obs
              (Obs.Event.Loop_end { time = r.span; loop = loop.Input.name; span = r.span });
          loops := (loop.Input.name, r) :: !loops;
          acc + r.span)
      0 input.Input.segments
  in
  { total_time = total; sequential_time = seq; loops = List.rev !loops }

let speedup r =
  if r.total_time = 0 then 1.0
  else float_of_int r.sequential_time /. float_of_int r.total_time
