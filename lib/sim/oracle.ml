type violation = { invariant : string; detail : string }

let invariant_names =
  [
    "schedule-coverage";
    "core-exclusivity";
    "dependence-ordering";
    "speculation-accounting";
    "queue-bounds";
    "busy-conservation";
    "commit-order";
  ]

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.invariant v.detail

exception Bad of violation

let fail invariant fmt = Format.kasprintf (fun detail -> raise (Bad { invariant; detail })) fmt

(* Per-iteration task structure, mirroring Pipeline.build_iter_views. *)
let iteration_structure (loop : Input.loop) =
  let iters = Input.iterations loop in
  let a = Array.make iters None and c = Array.make iters None in
  let bs = Array.make iters [] in
  Array.iter
    (fun (t : Ir.Task.t) ->
      let i = t.Ir.Task.iteration in
      match t.Ir.Task.phase with
      | Ir.Task.A -> a.(i) <- Some t.Ir.Task.id
      | Ir.Task.C -> c.(i) <- Some t.Ir.Task.id
      | Ir.Task.B -> bs.(i) <- t.Ir.Task.id :: bs.(i))
    loop.Input.tasks;
  (a, bs, c)

let check_coverage (loop : Input.loop) (r : Sched.loop_result) =
  let n = Array.length loop.Input.tasks in
  let seen = Array.make n 0 in
  let max_finish = ref 0 in
  List.iter
    (fun (e : Sched.sched_entry) ->
      if e.Sched.s_task < 0 || e.Sched.s_task >= n then
        fail "schedule-coverage" "entry references unknown task %d" e.Sched.s_task;
      seen.(e.Sched.s_task) <- seen.(e.Sched.s_task) + 1;
      let work = loop.Input.tasks.(e.Sched.s_task).Ir.Task.work in
      if e.Sched.s_start < 0 then
        fail "schedule-coverage" "task %d starts at %d < 0" e.Sched.s_task e.Sched.s_start;
      if e.Sched.s_finish - e.Sched.s_start <> work then
        fail "schedule-coverage" "task %d interval [%d, %d) does not match its work %d"
          e.Sched.s_task e.Sched.s_start e.Sched.s_finish work;
      if e.Sched.s_finish > !max_finish then max_finish := e.Sched.s_finish)
    r.Sched.schedule;
  Array.iteri
    (fun tid count ->
      if count <> 1 then
        fail "schedule-coverage" "task %d appears %d times in the schedule" tid count)
    seen;
  if n > 0 && !max_finish <> r.Sched.span then
    fail "schedule-coverage" "span %d but latest finish is %d" r.Sched.span !max_finish

(* Start/finish arrays indexed by task id; coverage has already been
   established. *)
let interval_arrays (loop : Input.loop) (r : Sched.loop_result) =
  let n = Array.length loop.Input.tasks in
  let start = Array.make n 0 and finish = Array.make n 0 and core = Array.make n 0 in
  List.iter
    (fun (e : Sched.sched_entry) ->
      start.(e.Sched.s_task) <- e.Sched.s_start;
      finish.(e.Sched.s_task) <- e.Sched.s_finish;
      core.(e.Sched.s_task) <- e.Sched.s_core)
    r.Sched.schedule;
  (start, finish, core)

let check_core_exclusivity (cfg : Machine.Config.t) (r : Sched.loop_result) =
  let cores = cfg.Machine.Config.cores in
  let by_core = Hashtbl.create 8 in
  List.iter
    (fun (e : Sched.sched_entry) ->
      if e.Sched.s_core < 0 || e.Sched.s_core >= cores then
        fail "core-exclusivity" "task %d scheduled on core %d of a %d-core machine"
          e.Sched.s_task e.Sched.s_core cores;
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_core e.Sched.s_core) in
      Hashtbl.replace by_core e.Sched.s_core
        ((e.Sched.s_start, e.Sched.s_finish, e.Sched.s_task) :: cur))
    r.Sched.schedule;
  Hashtbl.iter
    (fun c intervals ->
      let sorted = List.sort compare intervals in
      let rec walk = function
        | (_, f1, t1) :: ((s2, _, t2) :: _ as rest) ->
          if f1 > s2 then
            fail "core-exclusivity"
              "tasks %d and %d overlap on core %d (finish %d > start %d)" t1 t2 c f1 s2;
          walk rest
        | _ -> ()
      in
      walk sorted)
    by_core

(* The start-time floor one edge imposes on its consumer under the final
   schedule.  Mirrors Pipeline.constraint_of. *)
let edge_requirement (policy : Sched.policy) lat start finish (e : Input.edge) =
  if policy.Sched.forwarding then
    max 0 (start.(e.Input.src) + e.Input.src_offset + lat - e.Input.dst_offset)
  else finish.(e.Input.src) + lat

(* Structural pipeline ordering: the A chain, A_i before the B tasks it
   dispatched (plus one queue hop), every B of an iteration delivered
   (plus one hop) before C_i, and the C chain.  These hold under every
   policy: A and C tasks are never squashed, and an iteration's B finish
   times are final by the time C commits it. *)
let check_structural (cfg : Machine.Config.t) (loop : Input.loop) start finish =
  let lat = cfg.Machine.Config.comm_latency in
  let a, bs, c = iteration_structure loop in
  let iters = Array.length a in
  let last_a = ref None and last_c = ref None in
  for i = 0 to iters - 1 do
    (match (!last_a, a.(i)) with
    | Some p, Some q ->
      if start.(q) < finish.(p) then
        fail "dependence-ordering" "A task %d (iteration %d) starts at %d before A task %d finishes at %d"
          q i start.(q) p finish.(p)
    | _ -> ());
    (match a.(i) with Some _ as x -> last_a := x | None -> ());
    (match a.(i) with
    | Some ai ->
      List.iter
        (fun b ->
          if start.(b) < finish.(ai) + lat then
            fail "dependence-ordering"
              "B task %d starts at %d before its A task %d is delivered (finish %d + latency %d)"
              b start.(b) ai finish.(ai) lat)
        bs.(i)
    | None -> ());
    match c.(i) with
    | Some ci ->
      List.iter
        (fun b ->
          if start.(ci) < finish.(b) + lat then
            fail "dependence-ordering"
              "C task %d starts at %d before B task %d is delivered (finish %d + latency %d)"
              ci start.(ci) b finish.(b) lat)
        bs.(i);
      (match !last_c with
      | Some p ->
        if start.(ci) < finish.(p) then
          fail "dependence-ordering" "C task %d starts at %d before C task %d finishes at %d"
            ci start.(ci) p finish.(p)
      | None -> ());
      last_c := Some ci
    | None -> ()
  done

(* Explicit synchronized / speculated edges.  Sound exactly when the
   recorded start and finish times are the times the consumer actually
   observed: under Serialize nothing ever re-executes, and under Squash a
   zero squash count means the same.  With squashes > 0 a producer may
   have re-executed after an already-committed consumer sampled it, so
   the final times cannot be compared edge-wise. *)
let check_edges (cfg : Machine.Config.t) (policy : Sched.policy) (loop : Input.loop)
    (r : Sched.loop_result) start finish =
  let lat = cfg.Machine.Config.comm_latency in
  let serialize = policy.Sched.misspec = Sched.Serialize in
  if serialize || r.Sched.squashes = 0 then
    List.iter
      (fun (e : Input.edge) ->
        (* Speculated edges only gate the consumer under Serialize; under
           Squash an early consumer is squashed rather than delayed, and
           with zero squashes we can only conclude the sync edges held. *)
        if (not e.Input.speculated) || serialize then begin
          let req = edge_requirement policy lat start finish e in
          if start.(e.Input.dst) < req then
            fail "dependence-ordering"
              "%s edge %d -> %d violated: consumer starts at %d, needs >= %d"
              (if e.Input.speculated then "speculated" else "synchronized")
              e.Input.src e.Input.dst
              start.(e.Input.dst) req
        end)
      loop.Input.edges

let check_speculation_accounting (cfg : Machine.Config.t) (policy : Sched.policy)
    (loop : Input.loop) (r : Sched.loop_result) start finish =
  let lat = cfg.Machine.Config.comm_latency in
  let n = Array.length loop.Input.tasks in
  if r.Sched.misspec_delayed < 0 then
    fail "speculation-accounting" "negative misspec_delayed %d" r.Sched.misspec_delayed;
  if r.Sched.squashes < 0 then
    fail "speculation-accounting" "negative squash count %d" r.Sched.squashes;
  match policy.Sched.misspec with
  | Sched.Serialize ->
    if r.Sched.squashes <> 0 then
      fail "speculation-accounting" "%d squashes under the Serialize policy" r.Sched.squashes;
    (* A task counted as misspec-delayed had its readiness pushed past
       every synchronized constraint by a speculated in-edge: its maximal
       speculated-edge requirement strictly exceeds its maximal
       synchronized one, and its start honours it.  (The start can sit
       later than the requirement — the task may additionally have waited
       on a core or a queue slot — so equality cannot be demanded.)
       Recount the candidates from the final schedule; the counter can
       never exceed them, and is exactly zero with no speculated edges. *)
    let spec_req = Array.make n (-1) and sync_req = Array.make n 0 in
    List.iter
      (fun (e : Input.edge) ->
        let req = edge_requirement policy lat start finish e in
        if e.Input.speculated then spec_req.(e.Input.dst) <- max spec_req.(e.Input.dst) req
        else sync_req.(e.Input.dst) <- max sync_req.(e.Input.dst) req)
      loop.Input.edges;
    let candidates = ref 0 in
    for t = 0 to n - 1 do
      if spec_req.(t) >= 0 && spec_req.(t) > sync_req.(t) && start.(t) >= spec_req.(t) then
        incr candidates
    done;
    if r.Sched.misspec_delayed > !candidates then
      fail "speculation-accounting"
        "misspec_delayed = %d but only %d tasks are gated by a dominating speculated edge"
        r.Sched.misspec_delayed !candidates;
    if (not (List.exists (fun (e : Input.edge) -> e.Input.speculated) loop.Input.edges))
       && r.Sched.misspec_delayed <> 0
    then
      fail "speculation-accounting" "misspec_delayed = %d with no speculated edges"
        r.Sched.misspec_delayed
  | Sched.Squash ->
    (* Every delay is charged at some task start, and there are at most
       ntasks + squashes starts in the whole run. *)
    if r.Sched.misspec_delayed > n + r.Sched.squashes then
      fail "speculation-accounting" "misspec_delayed = %d exceeds the %d task starts"
        r.Sched.misspec_delayed (n + r.Sched.squashes)

let check_queue_bounds (cfg : Machine.Config.t) (loop : Input.loop) (r : Sched.loop_result) =
  let cap = cfg.Machine.Config.queue_capacity in
  (* A squash re-inserts the task at the head of its in-queue without
     re-running the capacity check (it reclaims the slot it issued from),
     so each squash can push occupancy at most one past the bound; fresh
     dispatches from phase A always respect it. *)
  let in_cap = if r.Sched.squashes > 0 then cap + r.Sched.squashes else cap in
  if r.Sched.in_queue_high_water < 0 || r.Sched.in_queue_high_water > in_cap then
    fail "queue-bounds" "in-queue high water %d outside [0, %d]" r.Sched.in_queue_high_water
      in_cap;
  if r.Sched.out_queue_high_water < 0 || r.Sched.out_queue_high_water > cap then
    fail "queue-bounds" "out-queue high water %d outside [0, %d]" r.Sched.out_queue_high_water
      cap;
  let m = Dswp.Planner.b_core_count cfg in
  if Array.length r.Sched.b_tasks_per_core <> m then
    fail "queue-bounds" "b_tasks_per_core has %d slots for %d B cores"
      (Array.length r.Sched.b_tasks_per_core)
      m;
  if r.Sched.squashes = 0 then begin
    let b_tasks =
      Array.fold_left
        (fun acc (t : Ir.Task.t) -> if t.Ir.Task.phase = Ir.Task.B then acc + 1 else acc)
        0 loop.Input.tasks
    in
    let executed = Array.fold_left ( + ) 0 r.Sched.b_tasks_per_core in
    if executed <> b_tasks then
      fail "queue-bounds" "B cores executed %d tasks; the loop has %d B tasks" executed b_tasks
  end

let check_busy (cfg : Machine.Config.t) (loop : Input.loop) (r : Sched.loop_result) =
  let cores = cfg.Machine.Config.cores in
  if Array.length r.Sched.busy <> cores then
    fail "busy-conservation" "busy array has %d slots for %d cores"
      (Array.length r.Sched.busy) cores;
  let per_core = Array.make cores 0 in
  List.iter
    (fun (e : Sched.sched_entry) ->
      per_core.(e.Sched.s_core) <- per_core.(e.Sched.s_core) + (e.Sched.s_finish - e.Sched.s_start))
    r.Sched.schedule;
  for c = 0 to cores - 1 do
    if r.Sched.squashes = 0 then begin
      if r.Sched.busy.(c) <> per_core.(c) then
        fail "busy-conservation" "core %d busy %d but its intervals sum to %d" c
          r.Sched.busy.(c) per_core.(c)
    end
    else if r.Sched.busy.(c) < per_core.(c) then
      fail "busy-conservation" "core %d busy %d below its final intervals' sum %d" c
        r.Sched.busy.(c) per_core.(c);
    (* Busy charges only time a core actually spent occupied (aborted runs
       count their elapsed portion, not their full work), and a core is
       occupied by at most one task at a time, so busy can never exceed
       the loop's span. *)
    if r.Sched.busy.(c) > r.Sched.span then
      fail "busy-conservation" "core %d busy %d exceeds span %d" c r.Sched.busy.(c)
        r.Sched.span
  done;
  let total = Array.fold_left ( + ) 0 r.Sched.busy in
  let work = Input.loop_work loop in
  if r.Sched.squashes = 0 && total <> work then
    fail "busy-conservation" "total busy %d does not equal loop work %d" total work;
  if total < work then
    fail "busy-conservation" "total busy %d below loop work %d" total work

let check_commit_order (loop : Input.loop) start =
  let _, _, c = iteration_structure loop in
  let last = ref None in
  Array.iteri
    (fun i ci ->
      match ci with
      | None -> ()
      | Some ci ->
        (match !last with
        | Some (j, cj) ->
          if start.(ci) < start.(cj) then
            fail "commit-order"
              "iteration %d commits (C start %d) before iteration %d (C start %d)" i
              start.(ci) j start.(cj)
        | None -> ());
        last := Some (i, ci))
    c

(* A 0/1-core machine executes the loop serially in task order; edges and
   latency do not apply, so only coverage, exclusivity and conservation
   are meaningful. *)
let validate_serial (cfg : Machine.Config.t) (loop : Input.loop) (r : Sched.loop_result) =
  check_coverage loop r;
  check_core_exclusivity cfg r;
  let work = Input.loop_work loop in
  if r.Sched.span <> work then
    fail "busy-conservation" "serial span %d does not equal loop work %d" r.Sched.span work;
  let total = Array.fold_left ( + ) 0 r.Sched.busy in
  if total <> work then
    fail "busy-conservation" "serial busy %d does not equal loop work %d" total work

let validate (cfg : Machine.Config.t) ?(policy = Sched.default_policy) (loop : Input.loop)
    (r : Sched.loop_result) =
  try
    if cfg.Machine.Config.cores <= 1 || Array.length loop.Input.tasks = 0 then
      validate_serial cfg loop r
    else begin
      check_coverage loop r;
      let start, finish, _core = interval_arrays loop r in
      check_core_exclusivity cfg r;
      check_structural cfg loop start finish;
      check_edges cfg policy loop r start finish;
      check_speculation_accounting cfg policy loop r start finish;
      check_queue_bounds cfg loop r;
      check_busy cfg loop r;
      check_commit_order loop start
    end;
    Ok ()
  with Bad v -> Error v

let validate_exn cfg ?policy loop r =
  match validate cfg ?policy loop r with
  | Ok () -> ()
  | Error v ->
    failwith
      (Format.asprintf "Sim.Oracle: loop %s violates %s (%s)" loop.Input.name v.invariant
         v.detail)
