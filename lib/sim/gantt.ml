let glyph task = Char.chr (Char.code 'a' + (task mod 26))

let render ?(width = 78) ~cores ~span entries =
  let span = max 1 span in
  let rows = Array.init cores (fun _ -> Bytes.make width '.') in
  let cell t = min (width - 1) (t * width / span) in
  List.iter
    (fun (e : Pipeline.sched_entry) ->
      if e.Pipeline.s_core >= 0 && e.Pipeline.s_core < cores then
        if e.Pipeline.s_finish = e.Pipeline.s_start then begin
          (* Zero-work task: it occupies no time, so a filled cell would
             misrepresent the schedule.  Mark the instant instead, without
             overwriting a real task drawn there. *)
          let x = cell e.Pipeline.s_start in
          if Bytes.get rows.(e.Pipeline.s_core) x = '.' then
            Bytes.set rows.(e.Pipeline.s_core) x '\''
        end
        else begin
          let lo = cell e.Pipeline.s_start in
          let hi = max lo (cell (e.Pipeline.s_finish - 1)) in
          for x = lo to hi do
            Bytes.set rows.(e.Pipeline.s_core) x (glyph e.Pipeline.s_task)
          done
        end)
    entries;
  let buf = Buffer.create (cores * (width + 12)) in
  Array.iteri
    (fun c row -> Buffer.add_string buf (Printf.sprintf "core %2d |%s|\n" c (Bytes.to_string row)))
    rows;
  Buffer.contents buf

let pp ?width ~cores ppf (r : Pipeline.loop_result) =
  Format.pp_print_string ppf
    (render ?width ~cores ~span:r.Pipeline.span r.Pipeline.schedule)
