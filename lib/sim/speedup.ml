type point = { threads : int; speedup : float; result : Pipeline.result }

type series = { label : string; points : point list }

let paper_thread_counts = [ 1; 2; 4; 6; 8; 12; 16; 24; 32 ]

let sweep ?pool ?(threads = paper_thread_counts) ?(policy = Pipeline.default_policy)
    ?(config = fun ~cores -> Machine.Config.default ~cores) ~label input =
  (* Each point is timed into the default span registry under the series
     label; Span.record is mutex-protected, so the pool path aggregates
     across domains. *)
  let run_one n =
    Obs.Span.time
      (Printf.sprintf "sweep-point/%s" label)
      (fun () ->
        let cfg = config ~cores:n in
        let result = Pipeline.run cfg ~policy input in
        { threads = n; speedup = Pipeline.speedup result; result })
  in
  let threads = List.sort_uniq compare threads in
  (* Each sweep point is an independent simulation of the same immutable
     input, and results are gathered by thread index, so the parallel
     path returns exactly the sequential series. *)
  let points =
    match pool with
    | None -> List.map run_one threads
    | Some pool -> Parallel.Pool.map_list pool run_one threads
  in
  { label; points }

let best s =
  match s.points with
  | [] -> invalid_arg "Speedup.best: empty series"
  | p :: ps ->
    let maximum = List.fold_left (fun acc q -> max acc q.speedup) p.speedup ps in
    let good = List.filter (fun q -> q.speedup >= 0.99 *. maximum) (p :: ps) in
    List.fold_left (fun acc q -> if q.threads < acc.threads then q else acc) (List.hd good)
      good

let at_threads s n = List.find_opt (fun p -> p.threads = n) s.points

let moore_speedup ~threads =
  if threads < 1 then invalid_arg "Speedup.moore_speedup: threads must be >= 1";
  let log2 = log (float_of_int threads) /. log 2.0 in
  1.4 ** log2

let pp_series ppf s =
  Format.fprintf ppf "%s:@." s.label;
  List.iter
    (fun p -> Format.fprintf ppf "  %2d threads: %.2fx@." p.threads p.speedup)
    s.points
