(** Schedule oracle: validates every invariant a legal A/B/C-pipeline
    schedule must satisfy, independently of how the simulator produced it.

    The oracle re-checks a {!Sched.loop_result} against the input
    dependence graph.  Its six invariants (plus a coverage precondition):

    + {b schedule-coverage} — every task appears exactly once, its
      interval length equals its work, and the span is the latest finish;
    + {b core-exclusivity} — no two intervals overlap on one core, and
      every core index is within the machine;
    + {b dependence-ordering} — the structural pipeline edges (A chain,
      A{_i} → B{_i} and B{_i} → C{_i} each plus one [comm_latency] hop,
      C chain) and every explicit synchronized edge delay the consumer;
      speculated edges do too under [Serialize];
    + {b speculation-accounting} — [squashes] is zero under [Serialize],
      and [misspec_delayed] never exceeds a recount of tasks whose start
      sits exactly on a dominating speculated-edge constraint;
    + {b queue-bounds} — both queue high-water marks stay within the
      configured capacity, and the per-B-core task counts sum to the B
      task count (when nothing was squashed);
    + {b busy-conservation} — per-core busy time equals (or, with
      squashed work, dominates) the sum of that core's intervals, and
      total busy equals (dominates) the loop work;
    + {b commit-order} — phase-C tasks start in iteration order.

    Edge-timing checks are skipped where re-execution makes the final
    schedule incomparable: under [Squash] with a non-zero squash count, a
    producer may have re-executed after a committed consumer sampled it.
    On a 0/1-core machine the loop runs serially in task order, so only
    coverage, exclusivity and conservation apply. *)

type violation = { invariant : string; detail : string }

val invariant_names : string list

val pp_violation : Format.formatter -> violation -> unit

val validate :
  Machine.Config.t ->
  ?policy:Sched.policy ->
  Input.loop ->
  Sched.loop_result ->
  (unit, violation) result
(** [validate cfg ~policy loop r] checks [r] against [loop] as simulated
    on [cfg] under [policy] (default {!Sched.default_policy}). *)

val validate_exn : Machine.Config.t -> ?policy:Sched.policy -> Input.loop -> Sched.loop_result -> unit
(** Like {!validate} but raises [Failure] naming the violated invariant. *)
