(** Fit {!Realize}'s cost model to a profiled source.

    {!Realize} synthesizes candidate loops from normalized static stage
    weights, so its absolute speedups drift from the profiled-trace
    sweeps (they are only comparable within one tournament).  A
    calibration record closes that gap: measured per-iteration stage
    costs, a measured queue hand-off latency, and measured speculation
    rates, fitted from either

    - a resolved profiled trace loop ({!fit}; costs in trace work
      units), or
    - a real-run probe dump emitted by [Runtime.Exec.telemetry_to_json]
      ({!of_probe_json}; costs in microseconds).

    The fit is a deterministic least-squares: the per-stage cost
    minimizing [sum_i (cost - work_i)^2] over the per-iteration stage
    work sums [work_i] is their mean, computed exactly in one pass.
    Because each observation is a {e per-iteration sum}, the fit is
    invariant under task reordering within an iteration.  The residual
    sum of squares is kept per stage as a fit-quality signal.  Cost
    units cancel in speedup ratios, so trace-unit and microsecond
    calibrations are equally usable — just not mixable.

    Records round-trip through {!Obs.Json} ({!to_json} / {!of_json});
    {!of_json} and {!load} reject malformed or inconsistent input with
    [Error], which callers surface as exit code 1. *)

type t = {
  bench : string;
  source : string;  (** ["profile"] or ["probe"] *)
  iterations : int;
  stage_cost : float array;  (** per-iteration mean cost, indexed A, B, C *)
  stage_rss : float array;  (** residual sum of squares of each fit *)
  queue_latency : int;
      (** inter-stage hand-off latency in cost units; the machine
          config's [comm_latency] under a calibrated simulation *)
  spec_rate : ((Ir.Task.phase * Ir.Task.phase) * float) list;
      (** measured {e adjacent-iteration} violation rate per (producer,
          consumer) stage pair, each in [0, 1]; sorted by pair.  Only
          distance-1 occurrences are counted because that is the
          carried-edge shape {!Realize} synthesizes — a violation many
          iterations back constrains a consumer that started long
          after the producer finished and costs next to nothing.
          {!Core.Plan_search.calibration_report} further refines the
          B->B rate against the profiled-trace sweep. *)
}

val fit : bench:string -> Input.loop -> t
(** Fit from a resolved profiled trace loop: stage costs from the
    per-iteration phase work sums, speculation rates from the loop's
    speculated carried edges, [queue_latency] 1 (the default machine's
    hand-off, which is what the trace sweeps simulate under). *)

val of_probe_json : Obs.Json.t -> (t, string) result
(** Fit from a [Runtime.Exec] probe dump: stage costs from the roles'
    stage-latency histogram sums (validation time folded into C),
    [queue_latency] from mean pop-stall per consumed item, the B->B
    speculation rate from the squash count. *)

val total_cost : t -> float
(** Sum of the per-stage costs — the calibrated cost of one iteration. *)

val spec_rate_for : t -> Ir.Task.phase -> Ir.Task.phase -> float option

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result

val load : string -> (t, string) result
(** Read and parse a calibration file — either a {!to_json} record or
    a probe dump (dispatching on the [calibration] / [probe_dump]
    marker, fitting the latter via {!of_probe_json}).  Any I/O,
    parse, or validation failure is [Error]. *)

val pp : Format.formatter -> t -> unit
(** One line: source, iterations, stage costs, queue latency, spec
    rates. *)
