let is_speculative = function
  | Ir.Pdg.Alias_speculation | Ir.Pdg.Value_speculation
  | Ir.Pdg.Control_speculation | Ir.Pdg.Silent_store ->
    true
  | Ir.Pdg.Commutative_annotation _ | Ir.Pdg.Ybranch_annotation -> false

(* Deterministic spread of an occurrence probability over the iteration
   space: edge occurs on iteration i when the running expected count
   crosses an integer there. *)
let occurs p i =
  let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
  let f x = int_of_float (Float.floor (float_of_int x *. p)) in
  f (i + 1) > f i

let loop pdg ~partition ~enabled ~iterations ?(scale = 100) ?calibration
    ?(distances = []) () =
  if iterations < 0 then invalid_arg "Realize.loop: negative iterations";
  if scale < 1 then invalid_arg "Realize.loop: scale must be >= 1";
  List.iter
    (fun (_, hist) ->
      List.iter
        (fun (d, f) ->
          if d < 1 then invalid_arg "Realize.loop: distance must be >= 1";
          if f < 0.0 then invalid_arg "Realize.loop: negative distance weight")
        hist)
    distances;
  let n = Ir.Pdg.node_count pdg in
  let phase_of = Array.make (max 1 n) Ir.Task.A in
  List.iter
    (fun (s : Dswp.Partition.stage) ->
      List.iter (fun v -> phase_of.(v) <- s.Dswp.Partition.phase) s.Dswp.Partition.nodes)
    partition.Dswp.Partition.stages;
  (* Calibrated: the candidate's normalized stage weights split the
     measured per-iteration cost instead of the synthetic [scale], so
     realized task works live on the profiled source's cost scale. *)
  let work_scale =
    match calibration with
    | Some c -> Float.max 1.0 (Calibrate.total_cost c)
    | None -> float_of_int scale
  in
  let stage_work ph =
    let s = Dswp.Partition.stage partition ph in
    if s.Dswp.Partition.nodes = [] then None
    else begin
      let w = int_of_float (Float.round (s.Dswp.Partition.weight *. work_scale)) in
      Some (if w = 0 && s.Dswp.Partition.weight > 0.0 then 1 else w)
    end
  in
  let wa = stage_work Ir.Task.A
  and wb = stage_work Ir.Task.B
  and wc = stage_work Ir.Task.C in
  let present = function
    | Ir.Task.A -> wa <> None
    | Ir.Task.B -> wb <> None
    | Ir.Task.C -> wc <> None
  in
  let offset ph =
    (* Position of the stage's task within an iteration's id block. *)
    match ph with
    | Ir.Task.A -> 0
    | Ir.Task.B -> if present Ir.Task.A then 1 else 0
    | Ir.Task.C ->
      (if present Ir.Task.A then 1 else 0) + if present Ir.Task.B then 1 else 0
  in
  let per_iter =
    (if present Ir.Task.A then 1 else 0)
    + (if present Ir.Task.B then 1 else 0)
    + if present Ir.Task.C then 1 else 0
  in
  let id_of ph i = (i * per_iter) + offset ph in
  let slots =
    List.filter_map
      (fun (ph, w) -> Option.map (fun w -> (ph, w)) w)
      [ (Ir.Task.A, wa); (Ir.Task.B, wb); (Ir.Task.C, wc) ]
  in
  let tasks =
    Array.init (iterations * per_iter) (fun k ->
        let i = k / per_iter and r = k mod per_iter in
        let ph, w = List.nth slots r in
        Ir.Task.make ~id:k ~iteration:i ~phase:ph ~work:w ())
  in
  (* Classify the PDG's edges into the constraint shapes the pipeline
     model cannot express implicitly. *)
  let surviving (e : Ir.Pdg.edge) =
    match e.Ir.Pdg.breaker with None -> true | Some b -> not (enabled b)
  in
  let edge_distance (e : Ir.Pdg.edge) =
    match e.Ir.Pdg.distance with Some d -> d | None -> 1
  in
  let syncs : ((Ir.Task.phase * Ir.Task.phase) * int, unit) Hashtbl.t =
    Hashtbl.create 8
  in
  let spec_quads = ref [] in
  List.iter
    (fun (e : Ir.Pdg.edge) ->
      let s1 = phase_of.(e.Ir.Pdg.src) and s2 = phase_of.(e.Ir.Pdg.dst) in
      if present s1 && present s2 then begin
        if surviving e then begin
          (* Same-stage carried edges ride the serial chains (A, C) or
             are forbidden in B by lint; intra-iteration forward edges
             ride the pipeline structure.  Only carried forward
             cross-stage edges need explicit synchronization — at the
             edge's analyzed minimum distance, when it carries one. *)
          if
            e.Ir.Pdg.loop_carried && s1 <> s2
            && Ir.Task.compare_phase s1 s2 < 0
          then Hashtbl.replace syncs ((s1, s2), edge_distance e) ()
        end
        else
          match e.Ir.Pdg.breaker with
          | Some b when enabled b && is_speculative b ->
            (* Mis-speculation cost surfaces on the carried occurrences:
               into B it squashes, into a serial stage it serializes.
               Same-serial-stage pairs are already chained. *)
            if
              e.Ir.Pdg.loop_carried
              && not (s1 = s2 && s1 <> Ir.Task.B)
            then begin
              (* A measured occurrence rate for this stage pair beats
                 the PDG's static probability annotation. *)
              let p =
                match
                  Option.bind calibration (fun c ->
                      Calibrate.spec_rate_for c s1 s2)
                with
                | Some r -> r
                | None -> e.Ir.Pdg.probability
              in
              (* A distance histogram for the stage pair spreads the
                 edge's occurrences across the measured (or statically
                 inferred) iteration distances; otherwise the edge's own
                 minimum distance is used, defaulting to 1. *)
              match List.assoc_opt (s1, s2) distances with
              | Some ((_ :: _) as hist) ->
                List.iter
                  (fun (d, f) ->
                    if f > 0.0 then spec_quads := (s1, s2, d, p *. f) :: !spec_quads)
                  hist
              | Some [] | None ->
                spec_quads := (s1, s2, edge_distance e, p) :: !spec_quads
            end
          | _ -> ()
      end)
    (Ir.Pdg.edges pdg);
  let spec_quads = List.sort_uniq compare !spec_quads in
  let edges = ref [] in
  Hashtbl.fold (fun key () acc -> key :: acc) syncs []
  |> List.sort compare
  |> List.iter (fun ((s1, s2), d) ->
         for i = 0 to iterations - 1 - d do
           edges :=
             {
               Input.src = id_of s1 i;
               dst = id_of s2 (i + d);
               speculated = false;
               src_offset = 0;
               dst_offset = 0;
             }
             :: !edges
         done);
  List.iter
    (fun (s1, s2, d, p) ->
      for i = 0 to iterations - 1 - d do
        if occurs p i then
          edges :=
            {
              Input.src = id_of s1 i;
              dst = id_of s2 (i + d);
              speculated = true;
              src_offset = 0;
              dst_offset = 0;
            }
            :: !edges
      done)
    spec_quads;
  Input.make_loop ~name:(Ir.Pdg.name pdg) ~tasks ~edges:(List.rev !edges)
