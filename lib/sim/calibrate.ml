type t = {
  bench : string;
  source : string;
  iterations : int;
  stage_cost : float array;
  stage_rss : float array;
  queue_latency : int;
  spec_rate : ((Ir.Task.phase * Ir.Task.phase) * float) list;
}

let phase_index = function Ir.Task.A -> 0 | Ir.Task.B -> 1 | Ir.Task.C -> 2
let phase_name = function Ir.Task.A -> "A" | Ir.Task.B -> "B" | Ir.Task.C -> "C"

let phase_of_name = function
  | "A" -> Some Ir.Task.A
  | "B" -> Some Ir.Task.B
  | "C" -> Some Ir.Task.C
  | _ -> None

let total_cost t = t.stage_cost.(0) +. t.stage_cost.(1) +. t.stage_cost.(2)

let spec_rate_for t s1 s2 = List.assoc_opt (s1, s2) t.spec_rate

(* The least-squares constant fit over observations x_i is their mean;
   one pass for the mean, one for the residuals, all deterministic. *)
let mean_rss obs n =
  if n = 0 then (0., 0.)
  else begin
    let total = ref 0 in
    for i = 0 to n - 1 do
      total := !total + obs.(i)
    done;
    let mean = float_of_int !total /. float_of_int n in
    let rss = ref 0. in
    for i = 0 to n - 1 do
      let d = float_of_int obs.(i) -. mean in
      rss := !rss +. (d *. d)
    done;
    (mean, !rss)
  end

let fit ~bench (loop : Input.loop) =
  let n = Input.iterations loop in
  (* Per-iteration per-stage work sums: summing within the iteration is
     what makes the fit invariant under intra-iteration task order. *)
  let sums = Array.init 3 (fun _ -> Array.make (max 1 n) 0) in
  Array.iter
    (fun (tk : Ir.Task.t) ->
      let p = phase_index tk.Ir.Task.phase in
      let i = tk.Ir.Task.iteration in
      sums.(p).(i) <- sums.(p).(i) + tk.Ir.Task.work)
    loop.Input.tasks;
  let stage_cost = Array.make 3 0. and stage_rss = Array.make 3 0. in
  for p = 0 to 2 do
    let m, r = mean_rss sums.(p) n in
    stage_cost.(p) <- m;
    stage_rss.(p) <- r
  done;
  (* Speculation rate = fraction of {e adjacent} iteration pairs whose
     speculated dependence dynamically occurred.  {!Realize} expresses
     mis-speculation as a distance-1 carried edge (iteration i gates or
     squashes iteration i+1), so only distance-1 occurrences map onto
     its cost model: a violation d iterations back constrains a
     consumer that typically started long after the producer finished
     and costs next to nothing in the pipeline.  Counting all distances
     would saturate the rate and serialize the realized loop outright
     (observed: 0.92 "occurrence" vs 0.18 distance-1 on the
     speculation-heavy bench).  Distinct destination iterations, not
     raw edges: several producers violating into the same iteration
     still cost one squash there. *)
  let violated : (Ir.Task.phase * Ir.Task.phase, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (e : Input.edge) ->
      if e.Input.speculated then begin
        let src = loop.Input.tasks.(e.Input.src)
        and dst = loop.Input.tasks.(e.Input.dst) in
        if dst.Ir.Task.iteration - src.Ir.Task.iteration = 1 then begin
          let key = (src.Ir.Task.phase, dst.Ir.Task.phase) in
          let iters =
            match Hashtbl.find_opt violated key with
            | Some s -> s
            | None ->
              let s = Hashtbl.create 16 in
              Hashtbl.add violated key s;
              s
          in
          Hashtbl.replace iters dst.Ir.Task.iteration ()
        end
      end)
    loop.Input.edges;
  let denom = float_of_int (max 1 (n - 1)) in
  let spec_rate =
    Hashtbl.fold
      (fun key iters acc ->
        (key, Float.min 1.0 (float_of_int (Hashtbl.length iters) /. denom)) :: acc)
      violated []
    |> List.sort compare
  in
  {
    bench;
    source = "profile";
    iterations = n;
    stage_cost;
    stage_rss;
    queue_latency = 1;
    spec_rate;
  }

(* --- JSON ---------------------------------------------------------- *)

let ( let* ) = Result.bind

let num = function
  | Obs.Json.Int i -> Some (float_of_int i)
  | Obs.Json.Float f -> Some f
  | _ -> None

let field name j =
  match Obs.Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "calibration: missing field %S" name)

let int_field name j =
  let* v = field name j in
  match Obs.Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "calibration: field %S is not an int" name)

let str_field name j =
  let* v = field name j in
  match Obs.Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "calibration: field %S is not a string" name)

let float3_field name j =
  let* v = field name j in
  match Obs.Json.to_list v with
  | Some [ a; b; c ] -> (
    match (num a, num b, num c) with
    | Some a, Some b, Some c ->
      if
        List.exists
          (fun x -> (not (Float.is_finite x)) || x < 0.)
          [ a; b; c ]
      then Error (Printf.sprintf "calibration: field %S out of range" name)
      else Ok [| a; b; c |]
    | _ -> Error (Printf.sprintf "calibration: field %S is not numeric" name))
  | _ -> Error (Printf.sprintf "calibration: field %S is not a 3-array" name)

let to_json t =
  let pair ((s1, s2), rate) =
    Obs.Json.Obj
      [
        ("src", Obs.Json.Str (phase_name s1));
        ("dst", Obs.Json.Str (phase_name s2));
        ("rate", Obs.Json.Float rate);
      ]
  in
  Obs.Json.Obj
    [
      ("calibration", Obs.Json.Int 1);
      ("bench", Obs.Json.Str t.bench);
      ("source", Obs.Json.Str t.source);
      ("iterations", Obs.Json.Int t.iterations);
      ( "stage_cost",
        Obs.Json.Arr (Array.to_list (Array.map (fun f -> Obs.Json.Float f) t.stage_cost)) );
      ( "stage_rss",
        Obs.Json.Arr (Array.to_list (Array.map (fun f -> Obs.Json.Float f) t.stage_rss)) );
      ("queue_latency", Obs.Json.Int t.queue_latency);
      ("spec_rate", Obs.Json.Arr (List.map pair t.spec_rate));
    ]

let of_json j =
  let* marker = int_field "calibration" j in
  if marker <> 1 then Error "calibration: unknown record version"
  else
    let* bench = str_field "bench" j in
    let* source = str_field "source" j in
    let* iterations = int_field "iterations" j in
    if iterations < 0 then Error "calibration: negative iterations"
    else
      let* stage_cost = float3_field "stage_cost" j in
      let* stage_rss = float3_field "stage_rss" j in
      let* queue_latency = int_field "queue_latency" j in
      if queue_latency < 0 then Error "calibration: negative queue latency"
      else
        let* pairs = field "spec_rate" j in
        let* pairs =
          match Obs.Json.to_list pairs with
          | Some l -> Ok l
          | None -> Error "calibration: spec_rate is not an array"
        in
        let* spec_rate =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              let* src = str_field "src" p in
              let* dst = str_field "dst" p in
              let* rate = field "rate" p in
              match (phase_of_name src, phase_of_name dst, num rate) with
              | Some s1, Some s2, Some r when r >= 0. && r <= 1. ->
                Ok (((s1, s2), r) :: acc)
              | _ -> Error "calibration: malformed spec_rate entry")
            (Ok []) pairs
        in
        Ok
          {
            bench;
            source;
            iterations;
            stage_cost;
            stage_rss;
            queue_latency;
            spec_rate = List.sort compare spec_rate;
          }

(* --- probe dumps --------------------------------------------------- *)

let hist_field name j =
  let* v = field name j in
  Obs.Hist.of_json v

let of_probe_json j =
  let* marker = int_field "probe_dump" j in
  if marker <> 1 then Error "probe dump: unknown record version"
  else
    let* bench = str_field "bench" j in
    let* iterations = int_field "iterations" j in
    if iterations < 1 then Error "probe dump: no committed iterations"
    else
      let* squashes = int_field "squashes" j in
      let* roles = field "roles" j in
      let* roles =
        match Obs.Json.to_list roles with
        | Some l -> Ok l
        | None -> Error "probe dump: roles is not an array"
      in
      let stage_sum = Array.make 3 0 in
      let validate_sum = ref 0 in
      let pop_stall_sum = ref 0 in
      let pops = ref 0 in
      let* () =
        List.fold_left
          (fun acc role ->
            let* () = acc in
            let* name = str_field "role" role in
            let* items = int_field "items" role in
            let* stage = hist_field "stage" role in
            let* pop_stall = hist_field "pop_stall" role in
            let* validate = hist_field "validate" role in
            match phase_of_name (String.sub name 0 (min 1 (String.length name))) with
            | None -> Error (Printf.sprintf "probe dump: unknown role %S" name)
            | Some ph ->
              let p = phase_index ph in
              stage_sum.(p) <- stage_sum.(p) + Obs.Hist.sum stage;
              pop_stall_sum := !pop_stall_sum + Obs.Hist.sum pop_stall;
              if ph <> Ir.Task.A then pops := !pops + items;
              if ph = Ir.Task.C then
                validate_sum := !validate_sum + Obs.Hist.sum validate;
              Ok ())
          (Ok ()) roles
      in
      let n = float_of_int iterations in
      let stage_cost =
        [|
          float_of_int stage_sum.(0) /. n;
          float_of_int stage_sum.(1) /. n;
          float_of_int (stage_sum.(2) + !validate_sum) /. n;
        |]
      in
      let queue_latency =
        max 1
          (int_of_float
             (Float.round (float_of_int !pop_stall_sum /. float_of_int (max 1 !pops))))
      in
      let rate =
        Float.min 1.0 (float_of_int squashes /. float_of_int (max 1 (iterations - 1)))
      in
      let spec_rate = if rate > 0. then [ ((Ir.Task.B, Ir.Task.B), rate) ] else [] in
      Ok
        {
          bench;
          source = "probe";
          iterations;
          stage_cost = Array.map (fun c -> Float.max 0. c) stage_cost;
          stage_rss = [| 0.; 0.; 0. |];
          queue_latency;
          spec_rate;
        }

let load path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | exception Sys_error e -> Error e
  | text ->
    let* j = Obs.Json.parse text in
    (* Dispatch on the record marker: a probe dump (written by
       [repro profile-real --dump]) is fitted on the fly, a
       calibration record is validated as-is. *)
    if Obs.Json.member "probe_dump" j <> None then of_probe_json j
    else of_json j

let pp ppf t =
  Format.fprintf ppf
    "%s (%s, %d iterations): stage costs A %.1f B %.1f C %.1f, queue latency %d"
    t.bench t.source t.iterations t.stage_cost.(0) t.stage_cost.(1)
    t.stage_cost.(2) t.queue_latency;
  List.iter
    (fun ((s1, s2), r) ->
      Format.fprintf ppf ", spec %s->%s %.3f" (phase_name s1) (phase_name s2) r)
    t.spec_rate
