module Tree = struct
  type 'a t = Node of 'a * (unit -> 'a t Seq.t)

  let root (Node (x, _)) = x

  let children (Node (_, c)) = c ()

  let make x children = Node (x, children)

  let pure x = Node (x, fun () -> Seq.empty)

  let rec map f (Node (x, c)) = Node (f x, fun () -> Seq.map (map f) (c ()))

  (* Shrink the left tree first, then the right: earlier components of a
     tuple shrink before later ones, like QuickCheck. *)
  let rec map2 f (Node (x, cx) as tx) (Node (y, cy) as ty) =
    Node
      ( f x y,
        fun () ->
          Seq.append
            (Seq.map (fun tx' -> map2 f tx' ty) (cx ()))
            (Seq.map (fun ty' -> map2 f tx ty') (cy ())) )

  (* Monadic bind: shrinking the outer value re-derives the inner tree,
     so the caller must make [f] deterministic (the generator layer does,
     by freezing the RNG state it hands to [f]). *)
  let rec bind (Node (x, cx)) f =
    let (Node (y, cy)) = f x in
    Node
      ( y,
        fun () ->
          Seq.append (Seq.map (fun tx' -> bind tx' f) (cx ())) (cy ()) )

  let rec filter p (Node (x, c)) =
    Node (x, fun () -> Seq.filter_map (fun t -> if p (root t) then Some (filter p t) else None) (c ()))
end

type 'a t = Simcore.Rng.t -> 'a Tree.t

let generate (g : 'a t) rng = g rng

let return x : 'a t = fun _ -> Tree.pure x

let map f (g : 'a t) : 'b t = fun rng -> Tree.map f (g rng)

let map2 f (ga : 'a t) (gb : 'b t) : 'c t =
 fun rng ->
  let ta = ga rng in
  let tb = gb rng in
  Tree.map2 f ta tb

let map3 f ga gb gc = map2 (fun f c -> f c) (map2 f ga gb) gc

let pair ga gb = map2 (fun a b -> (a, b)) ga gb

let triple ga gb gc = map3 (fun a b c -> (a, b, c)) ga gb gc

let bind (g : 'a t) (f : 'a -> 'b t) : 'b t =
 fun rng ->
  (* Freeze an independent stream for the continuation so that re-running
     [f] on a shrunk outer value replays the same inner randomness —
     without this, integrated shrinking of [bind] would not be
     deterministic. *)
  let inner = Simcore.Rng.split rng in
  let t = g rng in
  Tree.bind t (fun x -> f x (Simcore.Rng.copy inner))

let ( let* ) = bind

let no_shrink (g : 'a t) : 'a t = fun rng -> Tree.pure (Tree.root (g rng))

(* Candidate shrinks of [n] toward [towards]: the target first, then
   values halving the remaining distance.  O(log |n - towards|) long. *)
let int_shrink_candidates ~towards n =
  if n = towards then Seq.empty
  else
    let rec halves diff () =
      if diff = 0 then Seq.Nil else Seq.Cons (n - diff, halves (diff / 2))
    in
    halves (n - towards)

let rec int_tree ~towards n =
  Tree.make n (fun () -> Seq.map (int_tree ~towards) (int_shrink_candidates ~towards n))

let int_range ?origin lo hi : int t =
  if lo > hi then invalid_arg "Gen.int_range: lo > hi";
  let towards =
    match origin with
    | Some o -> if o < lo then lo else if o > hi then hi else o
    | None -> if lo <= 0 && 0 <= hi then 0 else lo
  in
  fun rng -> int_tree ~towards (Simcore.Rng.int_in rng lo hi)

let int_bound hi = int_range 0 hi

let small_nat : int t = int_range 0 100

let bool : bool t =
 fun rng ->
  let b = Simcore.Rng.bool rng in
  if b then Tree.make true (fun () -> Seq.return (Tree.pure false)) else Tree.pure false

let char_range lo hi : char t =
  map Char.chr (int_range ~origin:(Char.code lo) (Char.code lo) (Char.code hi))

let printable_char : char t = char_range 'a' 'z'

let byte_char : char t = map Char.chr (int_range 0 255)

let oneof (gs : 'a t list) : 'a t =
  match gs with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | gs ->
    let arr = Array.of_list gs in
    fun rng -> arr.(Simcore.Rng.int rng (Array.length arr)) rng

let oneofl (xs : 'a list) : 'a t =
  match xs with
  | [] -> invalid_arg "Gen.oneofl: empty list"
  | xs ->
    let arr = Array.of_list xs in
    (* Shrinks toward the first alternative. *)
    map (fun i -> arr.(i)) (int_range 0 (Array.length arr - 1))

let frequency (weighted : (int * 'a t) list) : 'a t =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: non-positive total weight";
  fun rng ->
    let roll = Simcore.Rng.int rng total in
    let rec pick acc = function
      | [] -> assert false
      | (w, g) :: rest -> if roll < acc + w then g rng else pick (acc + w) rest
    in
    pick 0 weighted

(* List shrinking: try dropping chunks of elements (largest first, so a
   failing case collapses fast), then shrink individual elements. *)
let rec list_tree (trees : 'a Tree.t list) : 'a list Tree.t =
  let n = List.length trees in
  let shrinks () =
    let removals =
      let rec chunk_sizes k () = if k <= 0 then Seq.Nil else Seq.Cons (k, chunk_sizes (k / 2)) in
      Seq.concat_map
        (fun k ->
          Seq.init
            ((n + k - 1) / k)
            (fun j ->
              let lo = j * k in
              List.filteri (fun i _ -> i < lo || i >= lo + k) trees))
        (chunk_sizes (n / 2))
    in
    let removals = if n > 0 then Seq.cons [] removals else removals in
    let elementwise =
      Seq.concat_map
        (fun i ->
          let before = List.filteri (fun j _ -> j < i) trees in
          let here = List.nth trees i in
          let after = List.filteri (fun j _ -> j > i) trees in
          Seq.map (fun here' -> before @ (here' :: after)) (Tree.children here))
        (Seq.init n Fun.id)
    in
    Seq.map list_tree (Seq.append removals elementwise)
  in
  Tree.make (List.map Tree.root trees) shrinks

let list_size (size : int t) (g : 'a t) : 'a list t =
 fun rng ->
  let n = Tree.root (size rng) in
  let trees = List.init n (fun _ -> g rng) in
  list_tree trees

let list g = list_size (int_range 0 20) g

let array_size size g = map Array.of_list (list_size size g)

let array g = map Array.of_list (list g)

let string_size ?(char = printable_char) size : string t =
  map (fun cs -> String.init (List.length cs) (List.nth cs)) (list_size size char)

let string ?char () = string_size ?char (int_range 0 40)

let such_that ?(max_tries = 200) p (g : 'a t) : 'a t =
 fun rng ->
  let rec attempt k =
    if k = 0 then failwith "Gen.such_that: predicate never satisfied"
    else
      let t = g rng in
      if p (Tree.root t) then Tree.filter p t else attempt (k - 1)
  in
  attempt max_tries

let shuffle (xs : 'a list) : 'a list t =
  (* Structure-only randomness: the permutation does not shrink. *)
  fun rng ->
   let arr = Array.of_list xs in
   Simcore.Rng.shuffle rng arr;
   Tree.pure (Array.to_list arr)

(* A shrinkable permutation of [0..n-1]: shrinks toward the identity by
   undoing swaps.  Represented by the Fisher-Yates swap indices, each of
   which shrinks toward its own position (no swap). *)
let permutation n : int list t =
  let swaps =
    List.init (max 0 (n - 1)) (fun k ->
        let i = n - 1 - k in
        map (fun j -> (i, j)) (int_range ~origin:i 0 i))
  in
  let rec sequence = function
    | [] -> return []
    | g :: gs -> map2 (fun x xs -> x :: xs) g (sequence gs)
  in
  map
    (fun swaps ->
      let a = Array.init n Fun.id in
      List.iter
        (fun (i, j) ->
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t)
        swaps;
      Array.to_list a)
    (sequence swaps)
