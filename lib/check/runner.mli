(** Property driver: run a generator against a predicate, shrink any
    failure to a minimal counterexample, and report a replayable seed.

    Determinism contract: every case [i] of a run with seed [s] draws
    from [Simcore.Rng.create (s + 0x9E3779B9 * i)], so a reported
    [(seed, case)] pair replays the exact failing input (and its whole
    shrink sequence) on any machine.

    Environment knobs:
    - [CHECK_COUNT] — cases per property when the caller does not pass
      [?count] (default 100; the [@prop] dune alias sets 1000);
    - [CHECK_SEED] — overrides the per-property default seed (an FNV-1a
      hash of the property name), letting CI explore fresh inputs while
      still printing the seed needed to replay a failure. *)

type failure = {
  seed : int;
  case : int;  (** 0-based index of the failing case *)
  shrink_steps : int;
  counterexample : string;  (** printed minimal counterexample *)
  error : string;  (** "property is false" or the escaping exception *)
}

type outcome = Passed of int | Failed of failure

val default_count : unit -> int

val seed_of_name : string -> int

val run_prop :
  ?count:int ->
  ?seed:int ->
  ?max_shrink_steps:int ->
  ?print:('a -> string) ->
  name:string ->
  'a Gen.t ->
  ('a -> bool) ->
  outcome

val pp_failure : name:string -> Format.formatter -> failure -> unit

val run_prop_exn :
  ?count:int ->
  ?seed:int ->
  ?max_shrink_steps:int ->
  ?print:('a -> string) ->
  name:string ->
  'a Gen.t ->
  ('a -> bool) ->
  unit
(** Raises [Failure] with the formatted failure report. *)
