(** Domain generators: random well-formed simulator inputs and IR
    structures, built on {!Gen}.

    Loops are generated through a printable descriptor ({!loop_desc}) so
    a shrunk counterexample can be shown to the user; [build_loop] drops
    any edge whose endpoint was shrunk away, so every shrink candidate is
    still a well-formed loop. *)

type loop_desc = {
  ld_iters : (int option * int list * int option) list;
      (** per-iteration (A work, B works, C work); [None] elides the
          phase for that iteration *)
  ld_edges : (int * int * int * int * bool * int * int) list;
      (** (src iter, src intra, dst iter, dst intra, speculated,
          src_offset, dst_offset) — B-to-B cross-iteration edges *)
}

val pp_loop_desc : Format.formatter -> loop_desc -> unit

val show_loop_desc : loop_desc -> string

val build_loop : ?name:string -> loop_desc -> Sim.Input.loop
(** Materialise a descriptor; dangling or non-forward edges are dropped. *)

val loop_desc :
  ?max_iters:int ->
  ?max_bs:int ->
  ?max_work:int ->
  ?edge_factor:int ->
  ?offsets:bool ->
  unit ->
  loop_desc Gen.t

val loop :
  ?name:string ->
  ?max_iters:int ->
  ?max_bs:int ->
  ?max_work:int ->
  ?edge_factor:int ->
  ?offsets:bool ->
  unit ->
  Sim.Input.loop Gen.t

val input : ?max_segments:int -> unit -> Sim.Input.t Gen.t
(** Serial and parallel-loop segments mixed. *)

val config : ?max_cores:int -> unit -> Machine.Config.t Gen.t
(** Cores shrink toward 1, queue capacity toward 32 (non-constraining),
    latency toward 0. *)

val policy : Sim.Sched.policy Gen.t

val trace : ?max_segments:int -> unit -> Ir.Trace.t Gen.t
(** Always passes [Ir.Trace.validate]. *)

val pdg : ?max_nodes:int -> ?breakers:bool -> ?self_deps:bool -> unit -> Ir.Pdg.t Gen.t
(** Acyclic (edges point from lower to higher ids), normalised weights.
    [breakers] (default false) decorates loop-carried edges with
    kind-appropriate breakers; [self_deps] (default false) adds
    loop-carried self-edges, so the graph is no longer forward-only. *)

val flow_commutative_fn : string
(** The [Call] function name the generator sometimes emits; annotate it
    in a {!Annotations.Commutative} registry to exercise the
    commutative-group paths of the analyzer and interpreter. *)

val flow_body :
  ?max_regions:int -> ?max_stmts:int -> ?max_depth:int -> unit -> Flow.Body.t Gen.t
(** Random loop-body IR, always passing [Flow.Body.validate]: 1-3
    scalars of either storage, up to 2 arrays, [max_regions] (default 3)
    regions of statement lists nested up to [max_depth] (default 2)
    levels of If/While/Call/Ybranch.  Shrinks by dropping statements and
    simplifying indices. *)
