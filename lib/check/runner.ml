type failure = {
  seed : int;
  case : int;
  shrink_steps : int;
  counterexample : string;
  error : string;
}

type outcome = Passed of int | Failed of failure

let env_int name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> int_of_string_opt (String.trim s)

let default_count () = Option.value ~default:100 (env_int "CHECK_COUNT")

let env_seed () = env_int "CHECK_SEED"

(* Stable per-property default seed: independent of hashing randomization
   (we roll our own FNV-1a) so a failure reproduces across runs and
   machines without any environment setup. *)
let seed_of_name name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

(* A property either holds, or fails with a reason (false = plain
   mismatch; an exception is captured with its message). *)
let check_prop prop x =
  match prop x with
  | true -> None
  | false -> Some "property is false"
  | exception e -> Some (Printexc.to_string e)

(* Greedy depth-first shrink: repeatedly descend to the first child that
   still fails.  The step budget bounds pathological shrink spaces. *)
let shrink ~max_shrink_steps prop tree first_error =
  let steps = ref 0 in
  let rec go tree error =
    if !steps >= max_shrink_steps then (tree, error)
    else
      let rec scan seq =
        (* Forcing a shrink candidate can itself raise (a [bind]
           continuation replaying on a shrunk outer value); treat that as
           the end of this node's candidates rather than a crash. *)
        match (try Some (seq ()) with _ -> None) with
        | None | Some Seq.Nil -> (tree, error)
        | Some (Seq.Cons (child, rest)) ->
          incr steps;
          if !steps > max_shrink_steps then (tree, error)
          else (
            match check_prop prop (Gen.Tree.root child) with
            | Some err -> go child err
            | None -> scan rest)
      in
      scan (Gen.Tree.children tree)
  in
  let t, e = go tree first_error in
  (t, e, !steps)

let run_prop ?count ?seed ?(max_shrink_steps = 2000) ?print ~name gen prop =
  let count = match count with Some c -> c | None -> default_count () in
  let seed =
    match seed with Some s -> s | None -> (match env_seed () with Some s -> s | None -> seed_of_name name)
  in
  let repr x = match print with Some p -> p x | None -> "<no printer>" in
  let rec cases i =
    if i >= count then Passed count
    else
      (* One fresh splitmix state per case, derived from (seed, case):
         a failure is replayed by the same seed and case index alone. *)
      let rng = Simcore.Rng.create (seed + (0x9E3779B9 * i)) in
      let tree = Gen.generate gen rng in
      match check_prop prop (Gen.Tree.root tree) with
      | None -> cases (i + 1)
      | Some error ->
        let tree, error, shrink_steps = shrink ~max_shrink_steps prop tree error in
        Failed
          {
            seed;
            case = i;
            shrink_steps;
            counterexample = repr (Gen.Tree.root tree);
            error;
          }
  in
  cases 0

let pp_failure ~name ppf f =
  Format.fprintf ppf
    "property %s failed (%s)@.  minimal counterexample (after %d shrink steps): %s@.  replay with CHECK_SEED=%d (case %d)"
    name f.error f.shrink_steps f.counterexample f.seed f.case

let run_prop_exn ?count ?seed ?max_shrink_steps ?print ~name gen prop =
  match run_prop ?count ?seed ?max_shrink_steps ?print ~name gen prop with
  | Passed _ -> ()
  | Failed f -> failwith (Format.asprintf "%a" (pp_failure ~name) f)
