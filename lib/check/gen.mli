(** Generators with integrated shrinking — the repo's dependency-free
    QuickCheck core.

    A generator is a function from a {!Simcore.Rng} state to a lazy rose
    tree: the root is the generated value, the children are its shrink
    candidates (each itself a tree, so shrinking composes through [map],
    [bind] and the collection combinators for free).  All randomness
    flows through [Simcore.Rng], so a run is replayed exactly by reusing
    its integer seed. *)

module Tree : sig
  type 'a t = Node of 'a * (unit -> 'a t Seq.t)

  val root : 'a t -> 'a

  val children : 'a t -> 'a t Seq.t

  val pure : 'a -> 'a t

  val map : ('a -> 'b) -> 'a t -> 'b t
end

type 'a t = Simcore.Rng.t -> 'a Tree.t

val generate : 'a t -> Simcore.Rng.t -> 'a Tree.t

val return : 'a -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t

val map3 : ('a -> 'b -> 'c -> 'd) -> 'a t -> 'b t -> 'c t -> 'd t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val bind : 'a t -> ('a -> 'b t) -> 'b t
(** Monadic bind with deterministic integrated shrinking: the
    continuation replays a frozen RNG stream, so shrinking the outer
    value regenerates the inner one reproducibly. *)

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t

val no_shrink : 'a t -> 'a t

val int_range : ?origin:int -> int -> int -> int t
(** [int_range lo hi] is uniform in [lo, hi]; shrinks toward [origin]
    (clamped; default 0 when inside the range, else [lo]). *)

val int_bound : int -> int t
(** [int_bound hi] = [int_range 0 hi]. *)

val small_nat : int t

val bool : bool t
(** Shrinks toward [false]. *)

val char_range : char -> char -> char t

val printable_char : char t
(** ['a'..'z'], shrinking toward ['a']. *)

val byte_char : char t
(** Any byte, shrinking toward ['\000']. *)

val oneof : 'a t list -> 'a t

val oneofl : 'a list -> 'a t
(** Uniform choice from a literal list; shrinks toward the head. *)

val frequency : (int * 'a t) list -> 'a t

val list : 'a t -> 'a list t
(** Up to 20 elements; shrinks by dropping chunks, then elementwise. *)

val list_size : int t -> 'a t -> 'a list t

val array : 'a t -> 'a array t

val array_size : int t -> 'a t -> 'a array t

val string : ?char:char t -> unit -> string t

val string_size : ?char:char t -> int t -> string t

val such_that : ?max_tries:int -> ('a -> bool) -> 'a t -> 'a t
(** Retry until the predicate holds (raises [Failure] after
    [max_tries]); shrink candidates are filtered by the predicate. *)

val shuffle : 'a list -> 'a list t
(** A uniform permutation of the given elements; does not shrink. *)

val permutation : int -> int list t
(** A uniform permutation of [0 .. n-1] that shrinks toward the
    identity by undoing Fisher-Yates swaps. *)
