(* Descriptor of a random well-formed A/B/C loop: one (a, bs, c) work
   tuple per iteration plus cross-iteration B-to-B edges addressed by
   (iteration, intra) so the descriptor survives shrinking — an edge
   whose endpoint was shrunk away is simply dropped by [build_loop]. *)
type loop_desc = {
  ld_iters : (int option * int list * int option) list;
  ld_edges : (int * int * int * int * bool * int * int) list;
      (* src iter, src intra, dst iter, dst intra, speculated,
         src_offset, dst_offset *)
}

let pp_loop_desc ppf d =
  let pp_opt ppf = function None -> Format.fprintf ppf "-" | Some w -> Format.fprintf ppf "%d" w in
  Format.fprintf ppf "@[<v>loop of %d iterations:@," (List.length d.ld_iters);
  List.iteri
    (fun i (a, bs, c) ->
      Format.fprintf ppf "  it %d: a=%a bs=[%s] c=%a@," i pp_opt a
        (String.concat ";" (List.map string_of_int bs))
        pp_opt c)
    d.ld_iters;
  List.iter
    (fun (si, sj, di, dj, spec, so, dofs) ->
      Format.fprintf ppf "  edge B(%d,%d) -> B(%d,%d)%s so=%d do=%d@," si sj di dj
        (if spec then " spec" else "") so dofs)
    d.ld_edges;
  Format.fprintf ppf "@]"

let show_loop_desc d = Format.asprintf "%a" pp_loop_desc d

let build_loop ?(name = "gen") d =
  let iters = Array.of_list d.ld_iters in
  let tasks = ref [] in
  let id = ref 0 in
  let b_ids = Hashtbl.create 16 in
  Array.iteri
    (fun i (a, bs, c) ->
      (match a with
      | Some w ->
        tasks := Ir.Task.make ~id:!id ~iteration:i ~phase:Ir.Task.A ~work:w () :: !tasks;
        incr id
      | None -> ());
      List.iteri
        (fun j w ->
          Hashtbl.replace b_ids (i, j) !id;
          tasks :=
            Ir.Task.make ~id:!id ~iteration:i ~phase:Ir.Task.B ~intra:j ~work:w () :: !tasks;
          incr id)
        bs;
      match c with
      | Some w ->
        tasks := Ir.Task.make ~id:!id ~iteration:i ~phase:Ir.Task.C ~work:w () :: !tasks;
        incr id
      | None -> ())
    iters;
  let edges =
    List.filter_map
      (fun (si, sj, di, dj, speculated, src_offset, dst_offset) ->
        match (Hashtbl.find_opt b_ids (si, sj), Hashtbl.find_opt b_ids (di, dj)) with
        | Some src, Some dst when si < di ->
          Some { Sim.Input.src; dst; speculated; src_offset; dst_offset }
        | _ -> None)
      d.ld_edges
  in
  Sim.Input.make_loop ~name ~tasks:(Array.of_list (List.rev !tasks)) ~edges

let loop_desc ?(max_iters = 10) ?(max_bs = 3) ?(max_work = 20) ?(edge_factor = 8)
    ?(offsets = false) () =
  let open Gen in
  let work = int_range 0 max_work in
  let iter =
    triple
      (oneof [ return None; map Option.some (int_range 0 (max 1 (max_work / 4))) ])
      (list_size (int_range 1 max_bs) work)
      (oneof [ return None; map Option.some (int_range 0 (max 1 (max_work / 4))) ])
  in
  let* iters = list_size (int_range 1 max_iters) iter in
  let n = List.length iters in
  let edge =
    let* si = int_range 0 (max 0 (n - 2)) in
    let* di = int_range (min (si + 1) (n - 1)) (n - 1) in
    let* sj = int_range 0 (max_bs - 1) in
    let* dj = int_range 0 (max_bs - 1) in
    let* spec = bool in
    let* so, dofs =
      if offsets then pair (int_range 0 max_work) (int_range 0 max_work) else return (0, 0)
    in
    return (si, sj, di, dj, spec, so, dofs)
  in
  let* edges = list_size (int_range 0 edge_factor) edge in
  return { ld_iters = iters; ld_edges = edges }

let loop ?name ?max_iters ?max_bs ?max_work ?edge_factor ?offsets () =
  Gen.map (build_loop ?name) (loop_desc ?max_iters ?max_bs ?max_work ?edge_factor ?offsets ())

let input ?(max_segments = 4) () =
  let open Gen in
  let* descs =
    list_size (int_range 1 max_segments)
      (oneof
         [
           map (fun w -> `Serial w) (int_range 0 50);
           map (fun d -> `Loop d) (loop_desc ~max_iters:6 ());
         ])
  in
  let segments =
    List.mapi
      (fun i -> function
        | `Serial w -> Sim.Input.Serial w
        | `Loop d -> Sim.Input.Parallel (build_loop ~name:(Printf.sprintf "l%d" i) d))
      descs
  in
  return (Sim.Input.make ~name:"gen" ~segments)

let config ?(max_cores = 32) () =
  let open Gen in
  let* cores = int_range ~origin:1 1 max_cores in
  let* cap = int_range ~origin:32 1 32 in
  let* lat = int_range 0 5 in
  return (Machine.Config.make ~cores ~queue_capacity:cap ~comm_latency:lat ())

let policy =
  let open Gen in
  let* misspec = oneofl [ Sim.Sched.Serialize; Sim.Sched.Squash ] in
  let* forwarding = bool in
  return { Sim.Sched.misspec; forwarding }

(* Random well-formed dynamic trace: serial segments interleaved with
   loops whose task ids are array indices and whose iterations are
   non-decreasing (Ir.Trace.validate accepts every generated trace). *)
let trace ?(max_segments = 4) () =
  let open Gen in
  let* descs =
    list_size (int_range 1 max_segments)
      (oneof
         [
           map (fun w -> `Serial w) (int_range 1 50);
           map (fun d -> `Loop d) (loop_desc ~max_iters:6 ());
         ])
  in
  let segments =
    List.mapi
      (fun i -> function
        | `Serial w -> Ir.Trace.Serial w
        | `Loop d ->
          let l = build_loop ~name:(Printf.sprintf "loop%d" i) d in
          let explicit_deps =
            List.map
              (fun (e : Sim.Input.edge) ->
                Ir.Dep.make ~src:e.Sim.Input.src ~dst:e.Sim.Input.dst ~kind:Ir.Dep.Register ())
              l.Sim.Input.edges
          in
          Ir.Trace.Loop
            { Ir.Trace.loop_name = l.Sim.Input.name; tasks = l.Sim.Input.tasks; explicit_deps })
      descs
  in
  return { Ir.Trace.name = "gen-trace"; segments }

(* Random static PDG: an acyclic weighted dependence graph (edges point
   from lower to higher node ids) with a sprinkling of loop-carried
   edges, the shape the DSWP partitioner consumes.  [breakers] decorates
   loop-carried edges with kind-appropriate breakers; [self_deps] adds
   loop-carried self-edges (the recurrences that keep nodes out of the
   parallel stage until broken). *)
let pdg ?(max_nodes = 8) ?(breakers = false) ?(self_deps = false) () =
  let open Gen in
  let* nodes = list_size (int_range 1 max_nodes) (pair (int_range 1 100) bool) in
  let n = List.length nodes in
  let total = float_of_int (List.fold_left (fun acc (w, _) -> acc + w) 0 nodes) in
  (* Only breakers the structural lint accepts for the edge kind; register
     recurrences are unbreakable. *)
  let breaker_for kind =
    if not breakers then return None
    else
      match kind with
      | Ir.Dep.Memory ->
        oneofl
          [
            None;
            Some Ir.Pdg.Alias_speculation;
            Some Ir.Pdg.Value_speculation;
            Some Ir.Pdg.Silent_store;
            Some Ir.Pdg.Ybranch_annotation;
          ]
      | Ir.Dep.Control -> oneofl [ None; Some Ir.Pdg.Control_speculation ]
      | Ir.Dep.Register -> return None
  in
  let prob = map (fun p -> float_of_int p /. 100.0) (int_range 0 100) in
  let edge =
    let* src = int_range 0 (max 0 (n - 2)) in
    let* dst = int_range (min (src + 1) (n - 1)) (n - 1) in
    let* kind = oneofl [ Ir.Dep.Register; Ir.Dep.Memory; Ir.Dep.Control ] in
    let* loop_carried = bool in
    let* probability = prob in
    let* breaker = if loop_carried then breaker_for kind else return None in
    return (src, dst, kind, loop_carried, probability, breaker)
  in
  let* edges = list_size (int_range 0 (2 * n)) edge in
  let self_edge =
    let* node = int_range 0 (n - 1) in
    let* kind = oneofl [ Ir.Dep.Memory; Ir.Dep.Control ] in
    let* probability = prob in
    let* breaker = breaker_for kind in
    return (node, node, kind, true, probability, breaker)
  in
  let* selfs =
    if self_deps then list_size (int_range 0 n) self_edge else return []
  in
  let g = Ir.Pdg.create "gen-pdg" in
  List.iteri
    (fun i (w, r) ->
      ignore
        (Ir.Pdg.add_node g
           ~label:(Printf.sprintf "n%d" i)
           ~weight:(float_of_int w /. total)
           ~replicable:r ()))
    nodes;
  List.iter
    (fun (src, dst, kind, loop_carried, probability, breaker) ->
      if src <> dst && src < n && dst < n then
        Ir.Pdg.add_edge g ~src ~dst ~kind ~loop_carried ~probability ?breaker ())
    edges;
  List.iter
    (fun (src, dst, kind, loop_carried, probability, breaker) ->
      Ir.Pdg.add_edge g ~src ~dst ~kind ~loop_carried ~probability ?breaker ())
    selfs;
  return g

(* ------------------------------------------------------------------ *)
(* Random loop-body IR ({!Flow.Body}) for the dependence-analysis
   soundness property.  Correct by construction: every value drawn here
   satisfies [Flow.Body.validate], so a shrunk counterexample is always
   a runnable body. *)

let flow_index =
  let open Gen in
  oneof
    [
      map (fun c -> Flow.Body.Fixed c) (int_bound 3);
      map2
        (fun stride offset -> Flow.Body.Affine { stride; offset })
        (int_range (-2) 2) (int_range (-2) 2);
      map2
        (fun salt range -> Flow.Body.Dynamic { salt; range })
        (int_bound 5) (int_range 1 4);
    ]

let flow_addr ~nscalars ~narrays =
  let open Gen in
  let scalar = map (fun s -> Flow.Body.Scalar s) (int_bound (nscalars - 1)) in
  if narrays = 0 then scalar
  else
    oneof
      [
        scalar;
        map2 (fun a idx -> Flow.Body.Elem (a, idx)) (int_bound (narrays - 1)) flow_index;
      ]

let flow_commutative_fn = "Yacm_gen"

let rec flow_stmt ~nscalars ~narrays ~max_stmts depth =
  let open Gen in
  let addr = flow_addr ~nscalars ~narrays in
  let leaf =
    [
      (2, map (fun w -> Flow.Body.Work w) (int_bound 4));
      (3, map (fun a -> Flow.Body.Read a) addr);
      (3, map (fun a -> Flow.Body.Write a) addr);
    ]
  in
  if depth = 0 then frequency leaf
  else
    let body = flow_stmts ~nscalars ~narrays ~max_stmts (depth - 1) in
    let cond =
      oneof
        [
          map2
            (fun period phase -> Flow.Body.Every { period; phase })
            (int_range 1 4) (int_bound 2);
          map2
            (fun addr modulus -> Flow.Body.Test { addr; modulus })
            addr (int_range 1 4);
        ]
    in
    frequency
      (leaf
      @ [
          ( 1,
            map3
              (fun cond then_ else_ -> Flow.Body.If { cond; then_; else_ })
              cond body body );
          (1, map2 (fun trips body -> Flow.Body.While { trips; body }) (int_bound 3) body);
          ( 1,
            map2
              (fun fn body -> Flow.Body.Call { fn; body })
              (oneofl [ flow_commutative_fn; "helper" ])
              body );
          ( 1,
            map2
              (fun probability body -> Flow.Body.Ybranch { probability; body })
              (oneofl [ 1.0; 0.5; 0.25 ])
              body );
        ])

and flow_stmts ~nscalars ~narrays ~max_stmts depth =
  Gen.list_size (Gen.int_bound max_stmts) (flow_stmt ~nscalars ~narrays ~max_stmts depth)

let flow_body ?(max_regions = 3) ?(max_stmts = 5) ?(max_depth = 2) () =
  let open Gen in
  let* nscalars = int_range 1 3 in
  let* narrays = int_bound 2 in
  let* storages =
    list_size (return nscalars)
      (map (fun mem -> if mem then Flow.Body.Mem else Flow.Body.Reg) bool)
  in
  let* nregions = int_range 1 max_regions in
  let* regions =
    list_size (return nregions)
      (flow_stmts ~nscalars ~narrays ~max_stmts max_depth)
  in
  return
    {
      Flow.Body.b_name = "gen-body";
      b_scalars =
        Array.of_list
          (List.mapi (fun i st -> (Printf.sprintf "s%d" i, st)) storages);
      b_arrays = Array.init narrays (Printf.sprintf "a%d");
      b_regions =
        Array.of_list
          (List.mapi
             (fun i stmts ->
               { Flow.Body.r_label = Printf.sprintf "r%d" i; r_stmts = stmts })
             regions);
    }
