(** Structured loop-body IR for the static dependence analyzer.

    A {!t} describes one parallelizable loop the way the paper's compiler
    sees it: the body is split into {e regions} (the candidate PDG nodes,
    in intra-iteration execution order), and each region is a small
    structured program over {e abstract locations} — named scalars and
    affine-indexed abstract arrays.  The IR deliberately has no values or
    arithmetic beyond what dependence analysis needs: reads, writes,
    opaque [Work] costs, structured control ([If]/[While]), calls that may
    carry {!Annotations.Commutative} markers, and Y-branch guarded
    regions ({!Annotations.Ybranch}).

    The same body drives two engines that are kept honest against each
    other: {!Interp} executes it and logs every access
    ({!Profiling.Access_log}-compatible), and {!Analyze} predicts, purely
    statically, every dependence any execution can exhibit. *)

type storage = Reg | Mem
    (** Storage class of a scalar: [Reg] scalars induce [Register]-kind
        dependences (unbreakable induction/accumulator recurrences),
        [Mem] scalars induce [Memory]-kind ones. *)

type index =
  | Fixed of int  (** the same element every iteration *)
  | Affine of { stride : int; offset : int }
      (** element [stride * i + offset] on iteration [i] *)
  | Dynamic of { salt : int; range : int }
      (** data-dependent element in [\[0, range)]; statically opaque.
          The interpreter derives it deterministically from
          [(iteration, salt)]. *)

type addr = Scalar of int | Elem of int * index
    (** A scalar by id, or element [index] of an abstract array by id. *)

type cond =
  | Every of { period : int; phase : int }
      (** taken when [(i + phase) mod period = 0]; models a branch whose
          rate is profiled but whose predicate is statically opaque *)
  | Test of { addr : addr; modulus : int }
      (** data-dependent branch: reads [addr] and takes the branch when
          the value is divisible by [modulus].  The read is a {e control
          consumption}: dependences into it get kind [Control]. *)

type stmt =
  | Work of int  (** opaque computation costing [n] work units *)
  | Read of addr
  | Write of addr
  | If of { cond : cond; then_ : stmt list; else_ : stmt list }
  | While of { trips : int; body : stmt list }
      (** bounded repetition; [trips = 0] is statically dead code *)
  | Call of { fn : string; body : stmt list }
      (** call whose accesses run inside [fn]'s commutative group when
          the registry annotates [fn] *)
  | Ybranch of { probability : float; body : stmt list }
      (** [@YBRANCH(probability)] guarded code: the compiler may take it
          on any iteration, the original program (modelled) never does *)

type region = { r_label : string; r_stmts : stmt list }

type t = {
  b_name : string;
  b_scalars : (string * storage) array;
  b_arrays : string array;
  b_regions : region array;
}

type base = B_scalar of int | B_array of int
    (** The alias-partition a location belongs to: distinct bases never
        alias; accesses within one base are compared index-wise. *)

val base_of_addr : addr -> base

val base_name : t -> base -> string

val storage_of_base : t -> base -> storage
(** Arrays are always [Mem]. *)

val validate : t -> (unit, string) result
(** Structural well-formedness: location ids in range, [Every] period
    >= 1 and phase >= 0, [Test] modulus >= 1, [While] trips >= 0,
    [Ybranch] probability in (0, 1], [Dynamic] range >= 1, non-negative
    [Work], at least one region. *)

val expected_work : t -> float array
(** Expected work units per region per iteration: [If] branches weighted
    by their static rate ([1/period], [1/modulus]), [While] multiplied by
    trips, [Ybranch] by the compiler's cut rate [1/interval]. *)

val weights : t -> float array
(** {!expected_work} normalized to sum to 1 (uniform when total is 0). *)

val drop_write : t -> t option
(** The audit's corrupted-IR mutation: remove the first [Write] in
    depth-first region order, yielding a body whose {e analysis} misses a
    store the {e original} body still executes.  [None] if the body has
    no write. *)

val pp : Format.formatter -> t -> unit
