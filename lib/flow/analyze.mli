(** Static dependence analysis over {!Body}.

    The engine computes, per ordered pair of regions, every data and
    control dependence any execution of the body can exhibit, with an
    {e iteration-distance lattice} attached to loop-carried ones:

    - [Exact d] — the dependence can only manifest from iteration [i] to
      [i + d] (affine indices with equal strides, or a scalar recurrence
      whose must-write kills everything older);
    - [At_least d] — any distance [>= d] is possible (an unkilled
      location with no must-write);
    - [Unknown] — the distance is statically unpredictable (a [Dynamic]
      index or mismatched affine strides).

    Soundness contract (checked by the [@prop] property in
    [test_flow.ml], 1000 random bodies): {e every} dependence the
    reference interpreter observes — in either Y-branch mode — is
    predicted by {!run} at a compatible distance.  False positives
    (conservative edges) are expected; false negatives are a bug, ever.

    The analysis is also where breaker eligibility is decided: a
    loop-carried memory dependence whose endpoints both execute inside
    the same Commutative group becomes [Commutative_annotation]; one
    whose location is reset by a Y-branch guarded write becomes
    [Ybranch_annotation]; carried control dependences are
    [Control_speculation]; carried may-dependences through statically
    unresolvable indices are [Alias_speculation]; register recurrences
    are unbreakable. *)

type dist = Exact of int | At_least of int | Unknown

type dep = {
  d_src : int;  (** producing region *)
  d_dst : int;  (** consuming region *)
  d_kind : Ir.Dep.kind;
  d_carried : bool;
  d_dists : dist list;
      (** possible iteration distances, deduplicated; [[Exact 0]] for
          intra-iteration dependences *)
  d_must : bool;
      (** manifests on every iteration of the original program: both
          endpoints unconditionally execute, the alias is definite, and
          no other write can intervene *)
  d_breaker : Ir.Pdg.breaker option;  (** [None] on intra deps *)
  d_locs : string list;  (** contributing base locations, sorted *)
}

type t = { body : Body.t; deps : dep list }

val run : ?commutative:Annotations.Commutative.t -> Body.t -> t
(** Deps are sorted by (src, dst, kind, carried, breaker). *)

type obs = {
  o_src : int;
  o_dst : int;
  o_kind : Ir.Dep.kind;
  o_dist : int;  (** 0 = intra-iteration *)
  o_iter : int;  (** the consuming iteration *)
  o_base : Body.base;
}
(** One dynamically observed dependence: a read whose last writer was a
    different task.  Same-region same-iteration pairs are sequential
    within one task and are not dependences between PDG node instances,
    so they are excluded. *)

val observe :
  ?commutative:Annotations.Commutative.t ->
  ?ybranch:[ `Compiler | `Never ] ->
  iterations:int ->
  Body.t ->
  obs list

val compatible : dist -> int -> bool
(** [compatible lattice_element observed_distance]. *)

val predicts : t -> obs -> bool
(** Some dependence with matching endpoints, kind, carriedness and
    location admits the observed distance. *)

val min_distance : dist list -> int
(** The binding synchronization distance: the least iteration distance
    any element admits ([Unknown] admits 1). *)

val pp_dep : Body.t -> Format.formatter -> dep -> unit

val pp : Format.formatter -> t -> unit
