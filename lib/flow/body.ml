type storage = Reg | Mem

type index =
  | Fixed of int
  | Affine of { stride : int; offset : int }
  | Dynamic of { salt : int; range : int }

type addr = Scalar of int | Elem of int * index

type cond =
  | Every of { period : int; phase : int }
  | Test of { addr : addr; modulus : int }

type stmt =
  | Work of int
  | Read of addr
  | Write of addr
  | If of { cond : cond; then_ : stmt list; else_ : stmt list }
  | While of { trips : int; body : stmt list }
  | Call of { fn : string; body : stmt list }
  | Ybranch of { probability : float; body : stmt list }

type region = { r_label : string; r_stmts : stmt list }

type t = {
  b_name : string;
  b_scalars : (string * storage) array;
  b_arrays : string array;
  b_regions : region array;
}

type base = B_scalar of int | B_array of int

let base_of_addr = function
  | Scalar s -> B_scalar s
  | Elem (a, _) -> B_array a

let base_name t = function
  | B_scalar s -> fst t.b_scalars.(s)
  | B_array a -> t.b_arrays.(a)

let storage_of_base t = function
  | B_scalar s -> snd t.b_scalars.(s)
  | B_array _ -> Mem

let validate t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  let check_addr = function
    | Scalar s ->
      if s < 0 || s >= Array.length t.b_scalars then err "unknown scalar %d" s
      else Ok ()
    | Elem (a, idx) ->
      if a < 0 || a >= Array.length t.b_arrays then err "unknown array %d" a
      else (
        match idx with
        | Dynamic { range; _ } when range < 1 -> err "Dynamic range must be >= 1"
        | _ -> Ok ())
  in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let rec check_stmts = function
    | [] -> Ok ()
    | s :: rest ->
      let* () = check_stmt s in
      check_stmts rest
  and check_stmt = function
    | Work w -> if w < 0 then err "negative Work" else Ok ()
    | Read a | Write a -> check_addr a
    | If { cond; then_; else_ } ->
      let* () =
        match cond with
        | Every { period; phase } ->
          if period < 1 then err "Every period must be >= 1"
          else if phase < 0 then err "Every phase must be >= 0"
          else Ok ()
        | Test { addr; modulus } ->
          if modulus < 1 then err "Test modulus must be >= 1" else check_addr addr
      in
      let* () = check_stmts then_ in
      check_stmts else_
    | While { trips; body } ->
      if trips < 0 then err "While trips must be >= 0" else check_stmts body
    | Call { body; _ } -> check_stmts body
    | Ybranch { probability; body } ->
      if not (probability > 0.0 && probability <= 1.0) then
        err "Ybranch probability must be in (0, 1]"
      else check_stmts body
  in
  if Array.length t.b_regions = 0 then err "body has no regions"
  else
    Array.fold_left
      (fun acc r -> match acc with Error _ -> acc | Ok () -> check_stmts r.r_stmts)
      (Ok ()) t.b_regions

let rec stmts_work stmts = List.fold_left (fun acc s -> acc +. stmt_work s) 0.0 stmts

and stmt_work = function
  | Work w -> float_of_int w
  | Read _ | Write _ -> 0.0
  | If { cond; then_; else_ } ->
    let p =
      match cond with
      | Every { period; _ } -> 1.0 /. float_of_int period
      | Test { modulus; _ } -> 1.0 /. float_of_int modulus
    in
    (p *. stmts_work then_) +. ((1.0 -. p) *. stmts_work else_)
  | While { trips; body } -> float_of_int trips *. stmts_work body
  | Call { body; _ } -> stmts_work body
  | Ybranch { probability; body } ->
    let k = Annotations.Ybranch.interval (Annotations.Ybranch.make ~probability) in
    stmts_work body /. float_of_int k

let expected_work t = Array.map (fun r -> stmts_work r.r_stmts) t.b_regions

let weights t =
  let w = expected_work t in
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then Array.map (fun _ -> 1.0 /. float_of_int (Array.length w)) w
  else Array.map (fun x -> x /. total) w

let drop_write t =
  let dropped = ref false in
  let rec go_stmts stmts = List.filter_map go_stmt stmts
  and go_stmt s =
    match s with
    | Write _ when not !dropped ->
      dropped := true;
      None
    | Work _ | Read _ | Write _ -> Some s
    | If r ->
      let then_ = go_stmts r.then_ in
      let else_ = go_stmts r.else_ in
      Some (If { r with then_; else_ })
    | While r -> Some (While { r with body = go_stmts r.body })
    | Call r -> Some (Call { r with body = go_stmts r.body })
    | Ybranch r -> Some (Ybranch { r with body = go_stmts r.body })
  in
  let regions =
    Array.map (fun r -> { r with r_stmts = go_stmts r.r_stmts }) t.b_regions
  in
  if !dropped then Some { t with b_regions = regions } else None

let pp_addr t ppf = function
  | Scalar s -> Format.fprintf ppf "%s" (fst t.b_scalars.(s))
  | Elem (a, idx) -> (
    let name = t.b_arrays.(a) in
    match idx with
    | Fixed c -> Format.fprintf ppf "%s[%d]" name c
    | Affine { stride; offset } -> Format.fprintf ppf "%s[%d*i%+d]" name stride offset
    | Dynamic { salt; range } -> Format.fprintf ppf "%s[dyn#%d<%d]" name salt range)

let pp ppf t =
  let rec pp_stmts indent stmts = List.iter (pp_stmt indent) stmts
  and pp_stmt indent s =
    let pad = String.make indent ' ' in
    match s with
    | Work w -> Format.fprintf ppf "%swork %d@." pad w
    | Read a -> Format.fprintf ppf "%sread %a@." pad (pp_addr t) a
    | Write a -> Format.fprintf ppf "%swrite %a@." pad (pp_addr t) a
    | If { cond; then_; else_ } ->
      (match cond with
      | Every { period; phase } ->
        Format.fprintf ppf "%sif (i+%d) mod %d = 0 {@." pad phase period
      | Test { addr; modulus } ->
        Format.fprintf ppf "%sif %a mod %d = 0 {@." pad (pp_addr t) addr modulus);
      pp_stmts (indent + 2) then_;
      if else_ <> [] then begin
        Format.fprintf ppf "%s} else {@." pad;
        pp_stmts (indent + 2) else_
      end;
      Format.fprintf ppf "%s}@." pad
    | While { trips; body } ->
      Format.fprintf ppf "%swhile <=%d trips {@." pad trips;
      pp_stmts (indent + 2) body;
      Format.fprintf ppf "%s}@." pad
    | Call { fn; body } ->
      Format.fprintf ppf "%scall %s {@." pad fn;
      pp_stmts (indent + 2) body;
      Format.fprintf ppf "%s}@." pad
    | Ybranch { probability; body } ->
      Format.fprintf ppf "%sybranch p=%g {@." pad probability;
      pp_stmts (indent + 2) body;
      Format.fprintf ppf "%s}@." pad
  in
  Format.fprintf ppf "body %s@." t.b_name;
  Format.fprintf ppf "  scalars:";
  Array.iter
    (fun (n, st) ->
      Format.fprintf ppf " %s:%s" n (match st with Reg -> "reg" | Mem -> "mem"))
    t.b_scalars;
  Format.fprintf ppf "@.  arrays:";
  Array.iter (fun n -> Format.fprintf ppf " %s" n) t.b_arrays;
  Format.fprintf ppf "@.";
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "region %d %s:@." i r.r_label;
      pp_stmts 2 r.r_stmts)
    t.b_regions
