type dist = Exact of int | At_least of int | Unknown

type dep = {
  d_src : int;
  d_dst : int;
  d_kind : Ir.Dep.kind;
  d_carried : bool;
  d_dists : dist list;
  d_must : bool;
  d_breaker : Ir.Pdg.breaker option;
  d_locs : string list;
}

type t = { body : Body.t; deps : dep list }

(* ------------------------------------------------------------------ *)
(* Abstract access collection.                                         *)

type acc = {
  c_region : int;
  c_pos : int;  (* global walk position; within an iteration, cross-region
                   dynamic order and (last-instance) intra-region order
                   both respect it *)
  c_op : [ `R | `W ];
  c_idx : Body.index option;  (* None for scalars *)
  c_must : bool;  (* executes on every iteration *)
  c_group : string option;
  c_ybranch : bool;
  c_ctrl : bool;
}

let norm_idx = function
  | Body.Affine { stride = 0; offset } -> Body.Fixed offset
  | i -> i

let collect ?commutative body =
  let pos = ref 0 in
  let by_base : (Body.base, acc list ref) Hashtbl.t = Hashtbl.create 16 in
  let push base a =
    let cell =
      match Hashtbl.find_opt by_base base with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.add by_base base r;
        r
    in
    cell := a :: !cell
  in
  let record ~region ~must ~group ~ybranch ~ctrl op addr =
    let p = !pos in
    incr pos;
    let idx =
      match addr with Body.Scalar _ -> None | Body.Elem (_, i) -> Some (norm_idx i)
    in
    push (Body.base_of_addr addr)
      {
        c_region = region;
        c_pos = p;
        c_op = op;
        c_idx = idx;
        c_must = must;
        c_group = group;
        c_ybranch = ybranch;
        c_ctrl = ctrl;
      }
  in
  Array.iteri
    (fun region r ->
      let rec go_stmts ~must ~group ~ybranch stmts =
        List.iter (go_stmt ~must ~group ~ybranch) stmts
      and go_stmt ~must ~group ~ybranch = function
        | Body.Work _ -> ()
        | Body.Read a -> record ~region ~must ~group ~ybranch ~ctrl:false `R a
        | Body.Write a -> record ~region ~must ~group ~ybranch ~ctrl:false `W a
        | Body.If { cond; then_; else_ } ->
          (match cond with
          | Body.Every _ -> ()
          | Body.Test { addr; _ } ->
            record ~region ~must ~group ~ybranch ~ctrl:true `R addr);
          go_stmts ~must:false ~group ~ybranch then_;
          go_stmts ~must:false ~group ~ybranch else_
        | Body.While { trips; body } ->
          if trips > 0 then go_stmts ~must ~group ~ybranch body
        | Body.Call { fn; body } ->
          let g =
            match commutative with
            | Some c -> Annotations.Commutative.group_of c ~fn
            | None -> None
          in
          let group = if g <> None then g else group in
          go_stmts ~must ~group ~ybranch body
        | Body.Ybranch { body; _ } -> go_stmts ~must:false ~group ~ybranch:true body
      in
      go_stmts ~must:true ~group:None ~ybranch:false r.Body.r_stmts)
    body.Body.b_regions;
  by_base

(* ------------------------------------------------------------------ *)
(* Alias geometry.                                                     *)

(* How a writer's and a reader's static indices can name the same cell,
   as a function of the iteration distance d = reader_iter - writer_iter. *)
type geom =
  | G_none
  | G_all  (* the same cell at every distance (scalars, equal fixed) *)
  | G_exact of int  (* exactly one distance *)
  | G_unknown  (* statically unresolvable *)

let geom_of widx ridx =
  match (widx, ridx) with
  | None, None -> G_all
  | Some wi, Some ri -> (
    match (wi, ri) with
    | Body.Fixed a, Body.Fixed b -> if a = b then G_all else G_none
    | Body.Affine { stride = s1; offset = o1 }, Body.Affine { stride = s2; offset = o2 }
      when s1 = s2 ->
      (* write touches s*i + o1, read touches s*j + o2: same cell iff
         j - i = (o1 - o2) / s *)
      let diff = o1 - o2 in
      if diff mod s1 <> 0 then G_none
      else
        let d = diff / s1 in
        if d >= 0 then G_exact d else G_none
    | _ -> G_unknown)
  | _ ->
    (* scalar vs array access never share a base *)
    assert false

(* A writer [w3] occupying iteration slot [k] of the window between the
   pair's write (iteration i, position pw) and read (iteration i + d,
   position pr) overwrites the cell strictly in between — provided the
   boundary slots respect position order. *)
let slot_ok ~d ~k ~pw ~pr ~p3 =
  k >= 0 && k <= d && (k > 0 || p3 > pw) && (k < d || p3 < pr)

(* The slots a third writer can provably occupy for this pair's cell:
   every slot (scalars / same fixed cell), one slot (same-stride affine),
   or none that is provable. *)
type cover = C_every | C_slot of int | C_never

let cover_of ~pair_geom ~widx (w3 : acc) =
  match pair_geom with
  | `Scalar -> C_every
  | `Fixed c -> (
    match w3.c_idx with Some (Body.Fixed c3) when c3 = c -> C_every | _ -> C_never)
  | `Affine (s, o1) -> (
    match w3.c_idx with
    | Some (Body.Affine { stride = s3; offset = o3 }) when s3 = s ->
      let diff = o1 - o3 in
      if diff mod s = 0 then C_slot (diff / s) else C_never
    | _ -> C_never)
  | `Opaque -> ignore widx; C_never

let covers_at ~d ~pw ~pr (cover, p3) =
  match cover with
  | C_never -> false
  | C_slot k -> slot_ok ~d ~k ~pw ~pr ~p3
  | C_every ->
    if d >= 2 then true
    else slot_ok ~d ~k:0 ~pw ~pr ~p3 || (d >= 1 && slot_ok ~d ~k:d ~pw ~pr ~p3)

(* ------------------------------------------------------------------ *)
(* Per-pair dependence inference.                                      *)

type elt = {
  e_src : int;
  e_dst : int;
  e_kind : Ir.Dep.kind;
  e_carried : bool;
  e_dist : dist;
  e_must : bool;
  e_breaker : Ir.Pdg.breaker option;
  e_base : Body.base;
}

let run ?commutative body =
  let by_base = collect ?commutative body in
  let elts = ref [] in
  Hashtbl.iter
    (fun base accs ->
      let accs = !accs in
      let writes = List.filter (fun a -> a.c_op = `W) accs in
      let reads = List.filter (fun a -> a.c_op = `R) accs in
      let storage = Body.storage_of_base body base in
      List.iter
        (fun (r : acc) ->
          let ybranch_covered =
            List.exists
              (fun w3 -> w3.c_ybranch && geom_of w3.c_idx r.c_idx <> G_none)
              writes
          in
          List.iter
            (fun (w : acc) ->
              let geom = geom_of w.c_idx r.c_idx in
              if geom <> G_none then begin
                let pair_geom =
                  match (geom, w.c_idx) with
                  | (G_all | G_exact _), None -> `Scalar
                  | (G_all | G_exact _), Some (Body.Fixed c) -> `Fixed c
                  | (G_all | G_exact _), Some (Body.Affine { stride; offset }) ->
                    `Affine (stride, offset)
                  | _ -> `Opaque
                in
                let pw = w.c_pos and pr = r.c_pos in
                let blockers =
                  List.filter_map
                    (fun w3 ->
                      if not w3.c_must then None
                      else
                        match cover_of ~pair_geom ~widx:w.c_idx w3 with
                        | C_never -> None
                        | c -> Some (c, w3.c_pos))
                    writes
                in
                let demoters =
                  List.filter_map
                    (fun w3 ->
                      if w3.c_ybranch then None
                      else
                        match cover_of ~pair_geom ~widx:w.c_idx w3 with
                        | C_never -> None
                        | c -> Some (c, w3.c_pos))
                    writes
                in
                let blocked d = List.exists (covers_at ~d ~pw ~pr) blockers in
                let demoted d = List.exists (covers_at ~d ~pw ~pr) demoters in
                let definite = match geom with G_all | G_exact _ -> true | _ -> false in
                let kind =
                  if r.c_ctrl then Ir.Dep.Control
                  else
                    match storage with
                    | Body.Reg -> Ir.Dep.Register
                    | Body.Mem -> Ir.Dep.Memory
                in
                let must_at d =
                  w.c_must && r.c_must && definite && not (demoted d)
                in
                let breaker_for de =
                  if kind = Ir.Dep.Memory && w.c_group <> None && w.c_group = r.c_group
                  then
                    Some
                      (Ir.Pdg.Commutative_annotation (Option.get w.c_group))
                  else if kind = Ir.Dep.Memory && ybranch_covered then
                    Some Ir.Pdg.Ybranch_annotation
                  else if kind = Ir.Dep.Control then Some Ir.Pdg.Control_speculation
                  else if kind = Ir.Dep.Memory && de = Unknown then
                    Some Ir.Pdg.Alias_speculation
                  else None
                in
                let emit ~carried ~de ~must =
                  (* self-dependences within one iteration are ordinary
                     sequential execution, not PDG edges *)
                  if carried || w.c_region <> r.c_region then
                    elts :=
                      {
                        e_src = w.c_region;
                        e_dst = r.c_region;
                        e_kind = kind;
                        e_carried = carried;
                        e_dist = de;
                        e_must = must;
                        e_breaker = (if carried then breaker_for de else None);
                        e_base = base;
                      }
                      :: !elts
                in
                (match geom with
                | G_none -> ()
                | G_exact 0 ->
                  if pw < pr && not (blocked 0) then
                    emit ~carried:false ~de:(Exact 0) ~must:(must_at 0)
                | G_exact d ->
                  if not (blocked d) then emit ~carried:true ~de:(Exact d) ~must:(must_at d)
                | G_all ->
                  if pw < pr && not (blocked 0) then
                    emit ~carried:false ~de:(Exact 0) ~must:(must_at 0);
                  let universal = List.exists (fun (c, _) -> c = C_every) blockers in
                  if universal then begin
                    if not (blocked 1) then
                      emit ~carried:true ~de:(Exact 1) ~must:(must_at 1)
                  end
                  else emit ~carried:true ~de:(At_least 1) ~must:false
                | G_unknown ->
                  if pw < pr then emit ~carried:false ~de:(Exact 0) ~must:false;
                  emit ~carried:true ~de:Unknown ~must:false)
              end)
            writes)
        reads)
    by_base;
  (* Aggregate per (src, dst, kind, carried, breaker). *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun e ->
      let key = (e.e_src, e.e_dst, e.e_kind, e.e_carried, e.e_breaker) in
      let must, dists, bases =
        match Hashtbl.find_opt tbl key with
        | Some (m, ds, bs) -> (m, ds, bs)
        | None -> (false, [], [])
      in
      Hashtbl.replace tbl key
        (must || e.e_must, e.e_dist :: dists, e.e_base :: bases))
    !elts;
  let dist_order = function Exact d -> (0, d) | At_least d -> (1, d) | Unknown -> (2, 0) in
  let deps =
    Hashtbl.fold
      (fun (src, dst, kind, carried, breaker) (must, dists, bases) acc ->
        let d_dists =
          List.sort_uniq (fun a b -> compare (dist_order a) (dist_order b)) dists
        in
        let d_locs =
          List.sort_uniq compare (List.map (Body.base_name body) bases)
        in
        {
          d_src = src;
          d_dst = dst;
          d_kind = kind;
          d_carried = carried;
          d_dists;
          d_must = must;
          d_breaker = breaker;
          d_locs;
        }
        :: acc)
      tbl []
  in
  let deps =
    List.sort
      (fun a b ->
        compare
          (a.d_src, a.d_dst, Ir.Dep.kind_to_string a.d_kind, a.d_carried, a.d_breaker)
          (b.d_src, b.d_dst, Ir.Dep.kind_to_string b.d_kind, b.d_carried, b.d_breaker))
      deps
  in
  { body; deps }

(* ------------------------------------------------------------------ *)
(* Dynamic observation and the soundness predicate.                    *)

type obs = {
  o_src : int;
  o_dst : int;
  o_kind : Ir.Dep.kind;
  o_dist : int;
  o_iter : int;
  o_base : Body.base;
}

let observe ?commutative ?ybranch ~iterations body =
  let res = Interp.run ?commutative ?ybranch ~iterations body in
  let last_write : (Interp.cell, int * int) Hashtbl.t = Hashtbl.create 64 in
  let obs = ref [] in
  List.iter
    (fun (a : Interp.access) ->
      match a.a_op with
      | `W -> Hashtbl.replace last_write a.a_cell (a.a_iter, a.a_region)
      | `R -> (
        match Hashtbl.find_opt last_write a.a_cell with
        | None -> ()
        | Some (wi, wr) ->
          if not (wi = a.a_iter && wr = a.a_region) then begin
            let base = Interp.cell_base a.a_cell in
            let kind =
              if a.a_ctrl then Ir.Dep.Control
              else
                match Body.storage_of_base body base with
                | Body.Reg -> Ir.Dep.Register
                | Body.Mem -> Ir.Dep.Memory
            in
            obs :=
              {
                o_src = wr;
                o_dst = a.a_region;
                o_kind = kind;
                o_dist = a.a_iter - wi;
                o_iter = a.a_iter;
                o_base = base;
              }
              :: !obs
          end))
    res.accesses;
  List.rev !obs

let compatible de d =
  match de with Exact k -> d = k | At_least k -> d >= k | Unknown -> true

let predicts t o =
  let loc = Body.base_name t.body o.o_base in
  List.exists
    (fun dep ->
      dep.d_src = o.o_src && dep.d_dst = o.o_dst && dep.d_kind = o.o_kind
      && dep.d_carried = (o.o_dist > 0)
      && List.mem loc dep.d_locs
      && List.exists (fun de -> compatible de o.o_dist) dep.d_dists)
    t.deps

let min_distance dists =
  List.fold_left
    (fun acc de ->
      let d = match de with Exact k -> k | At_least k -> k | Unknown -> 1 in
      min acc d)
    max_int dists

(* ------------------------------------------------------------------ *)

let pp_dist ppf = function
  | Exact d -> Format.fprintf ppf "=%d" d
  | At_least d -> Format.fprintf ppf ">=%d" d
  | Unknown -> Format.fprintf ppf "?"

let pp_dep body ppf d =
  let region i = body.Body.b_regions.(i).Body.r_label in
  Format.fprintf ppf "%s -> %s %s%s %s dist{%s} via %s%s" (region d.d_src)
    (region d.d_dst)
    (Ir.Dep.kind_to_string d.d_kind)
    (if d.d_carried then "/carried" else "")
    (if d.d_must then "must" else "may")
    (String.concat ","
       (List.map (fun de -> Format.asprintf "%a" pp_dist de) d.d_dists))
    (String.concat "," d.d_locs)
    (match d.d_breaker with
    | None -> ""
    | Some b ->
      Format.asprintf " [%s]"
        (match b with
        | Ir.Pdg.Alias_speculation -> "alias-spec"
        | Ir.Pdg.Value_speculation -> "value-spec"
        | Ir.Pdg.Control_speculation -> "control-spec"
        | Ir.Pdg.Silent_store -> "silent-store"
        | Ir.Pdg.Commutative_annotation g -> "commutative:" ^ g
        | Ir.Pdg.Ybranch_annotation -> "ybranch"))

let pp ppf t =
  Format.fprintf ppf "analysis of %s: %d deps@." t.body.Body.b_name
    (List.length t.deps);
  List.iter (fun d -> Format.fprintf ppf "  %a@." (pp_dep t.body) d) t.deps
