type result = {
  body : Body.t;
  analysis : Analyze.t;
  pdg : Ir.Pdg.t;
  rates : (Analyze.dep * float) list;
  histograms : ((int * int) * (int * float) list) list;
  hist_totals : ((int * int) * int) list;
  iterations : int;
}

let round3 x = Float.round (x *. 1000.0) /. 1000.0

(* Observations attributable to an aggregated dep: matching endpoints,
   kind, carriedness, a contributing base location, and a distance the
   lattice admits. *)
let attributed (dep : Analyze.dep) body (o : Analyze.obs) =
  dep.Analyze.d_src = o.Analyze.o_src
  && dep.Analyze.d_dst = o.Analyze.o_dst
  && dep.Analyze.d_kind = o.Analyze.o_kind
  && dep.Analyze.d_carried = (o.Analyze.o_dist > 0)
  && List.mem (Body.base_name body o.Analyze.o_base) dep.Analyze.d_locs
  && List.exists (fun de -> Analyze.compatible de o.Analyze.o_dist) dep.Analyze.d_dists

let run ?commutative ?(iterations = 200) body =
  let iterations = max 8 iterations in
  let analysis = Analyze.run ?commutative body in
  let obs = Analyze.observe ?commutative ~ybranch:`Never ~iterations body in
  let interp = Interp.run ?commutative ~ybranch:`Never ~iterations body in
  (* Outcome-change rate per (branch region, tested base): the cost a
     last-outcome predictor would pay, i.e. the misprediction rate that
     prices control dependences into that branch. *)
  let flips : (int * Body.base, int * int * bool) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Interp.branch) ->
      let key = (b.Interp.br_region, b.Interp.br_base) in
      match Hashtbl.find_opt flips key with
      | None -> Hashtbl.replace flips key (1, 0, b.Interp.br_taken)
      | Some (n, changes, last) ->
        let changes = if b.Interp.br_taken <> last then changes + 1 else changes in
        Hashtbl.replace flips key (n + 1, changes, b.Interp.br_taken))
    interp.Interp.branches;
  let flip_rate region base =
    match Hashtbl.find_opt flips (region, base) with
    | Some (n, changes, _) when n > 1 -> float_of_int changes /. float_of_int (n - 1)
    | Some _ -> 0.0
    | None -> 0.0
  in
  let base_of_name =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i (n, _) -> Hashtbl.replace tbl n (Body.B_scalar i)) body.Body.b_scalars;
    Array.iteri (fun i n -> Hashtbl.replace tbl n (Body.B_array i)) body.Body.b_arrays;
    fun n -> Hashtbl.find_opt tbl n
  in
  let rate_of (dep : Analyze.dep) =
    if dep.Analyze.d_kind = Ir.Dep.Control then
      (* misprediction, not manifestation: a branch evaluated every
         iteration always consumes its inputs, but only mispredictions
         cost anything under control speculation *)
      List.fold_left
        (fun acc loc ->
          match base_of_name loc with
          | Some base -> Float.max acc (flip_rate dep.Analyze.d_dst base)
          | None -> acc)
        0.0 dep.Analyze.d_locs
    else begin
      let iters = Hashtbl.create 32 in
      List.iter
        (fun o -> if attributed dep body o then Hashtbl.replace iters o.Analyze.o_iter ())
        obs;
      let denom =
        if dep.Analyze.d_carried then max 1 (iterations - 1) else max 1 iterations
      in
      Float.min 1.0 (float_of_int (Hashtbl.length iters) /. float_of_int denom)
    end
  in
  let rates = List.map (fun dep -> (dep, round3 (rate_of dep))) analysis.Analyze.deps in
  (* Carried distance histograms per region pair. *)
  let hist : (int * int, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (o : Analyze.obs) ->
      if o.Analyze.o_dist > 0 then begin
        let key = (o.Analyze.o_src, o.Analyze.o_dst) in
        let buckets =
          match Hashtbl.find_opt hist key with
          | Some b -> b
          | None ->
            let b = Hashtbl.create 4 in
            Hashtbl.add hist key b;
            b
        in
        let n = Option.value ~default:0 (Hashtbl.find_opt buckets o.Analyze.o_dist) in
        Hashtbl.replace buckets o.Analyze.o_dist (n + 1)
      end)
    obs;
  let histograms, hist_totals =
    Hashtbl.fold (fun key buckets acc -> (key, buckets) :: acc) hist []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (key, buckets) ->
           let counts =
             Hashtbl.fold (fun d n acc -> (d, n) :: acc) buckets []
             |> List.sort compare
           in
           let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
           let norm =
             List.map
               (fun (d, n) -> (d, float_of_int n /. float_of_int (max 1 total)))
               counts
           in
           ((key, norm), (key, total)))
    |> List.split
  in
  (* Synthesize the PDG. *)
  let deps = analysis.Analyze.deps in
  let pdg = Ir.Pdg.create (body.Body.b_name ^ ".inferred") in
  let weights = Body.weights body in
  Array.iteri
    (fun i (r : Body.region) ->
      let replicable =
        List.for_all
          (fun (d : Analyze.dep) ->
            (not (d.Analyze.d_carried && d.Analyze.d_src = i && d.Analyze.d_dst = i))
            || d.Analyze.d_breaker <> None)
          deps
      in
      ignore (Ir.Pdg.add_node pdg ~label:r.Body.r_label ~weight:weights.(i) ~replicable ()))
    body.Body.b_regions;
  List.iter
    (fun (dep, rate) ->
      let distance =
        if dep.Analyze.d_carried then begin
          let d = Analyze.min_distance dep.Analyze.d_dists in
          if d >= 2 then Some d else None
        end
        else None
      in
      Ir.Pdg.add_edge pdg ~src:dep.Analyze.d_src ~dst:dep.Analyze.d_dst
        ~kind:dep.Analyze.d_kind ~loop_carried:dep.Analyze.d_carried ~probability:rate
        ?breaker:dep.Analyze.d_breaker ?distance ())
    rates;
  { body; analysis; pdg; rates; histograms; hist_totals; iterations }

let distance_histograms t ~phase_of =
  let merged : (Ir.Task.phase * Ir.Task.phase, (int, float) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4
  in
  List.iter
    (fun (((src, dst) as key), norm) ->
      let total =
        float_of_int (Option.value ~default:0 (List.assoc_opt key t.hist_totals))
      in
      if total > 0.0 then begin
        let pkey = (phase_of src, phase_of dst) in
        let buckets =
          match Hashtbl.find_opt merged pkey with
          | Some b -> b
          | None ->
            let b = Hashtbl.create 4 in
            Hashtbl.add merged pkey b;
            b
        in
        List.iter
          (fun (d, f) ->
            let cur = Option.value ~default:0.0 (Hashtbl.find_opt buckets d) in
            Hashtbl.replace buckets d (cur +. (f *. total)))
          norm
      end)
    t.histograms;
  Hashtbl.fold (fun pkey buckets acc -> (pkey, buckets) :: acc) merged []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Ir.Task.compare_phase a1 b1 with
         | 0 -> Ir.Task.compare_phase a2 b2
         | n -> n)
  |> List.map (fun (pkey, buckets) ->
         let counts =
           Hashtbl.fold (fun d w acc -> (d, w) :: acc) buckets [] |> List.sort compare
         in
         let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 counts in
         (pkey, List.map (fun (d, w) -> (d, w /. Float.max 1e-9 total)) counts))
