(** PDG synthesis from the static analysis.

    [run] turns an analyzed body into an {!Ir.Pdg.t} shaped like the
    hand-written registry PDGs: one node per region (ids are region
    indices, weights the normalized expected [Work] costs), one edge per
    aggregated dependence, breakers from the analyzer's eligibility
    rules, and [distance] attached when the lattice pins a carried edge
    to a minimum distance [>= 2].  A node is replicable exactly when all
    its carried self-dependences carry breakers.

    Edge probabilities are {e measured}: the reference interpreter runs
    the original ([`Never] Y-branch mode) program and each dependence's
    manifestation rate — or, for control dependences, the outcome-change
    (misprediction) rate of the consuming branch — becomes the edge
    probability, replacing the analyzer's static must/may default.  The
    same replay yields the per-region-pair carried distance histograms
    that {!Sim.Realize} consumes as its [?distances] override. *)

type result = {
  body : Body.t;
  analysis : Analyze.t;
  pdg : Ir.Pdg.t;
  rates : (Analyze.dep * float) list;
      (** measured probability per analyzed dep, in {!Analyze.t} order *)
  histograms : ((int * int) * (int * float) list) list;
      (** per (src region, dst region): normalized histogram of observed
          carried distances, distances ascending *)
  hist_totals : ((int * int) * int) list;
      (** observation count behind each histogram, for count-weighted
          merging *)
  iterations : int;  (** sample size the measurements used *)
}

val run :
  ?commutative:Annotations.Commutative.t ->
  ?iterations:int ->
  Body.t ->
  result
(** Default [iterations] 200 (minimum 8 enforced). *)

val distance_histograms :
  result ->
  phase_of:(int -> Ir.Task.phase) ->
  ((Ir.Task.phase * Ir.Task.phase) * (int * float) list) list
(** The region-pair histograms folded onto stage pairs under a
    partition's node->phase map, count-weighted and renormalized —
    directly consumable by {!Sim.Realize}'s [?distances]. *)
