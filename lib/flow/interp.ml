type cell = Cell_scalar of int | Cell_elem of int * int

type access = {
  a_iter : int;
  a_region : int;
  a_op : [ `R | `W ];
  a_cell : cell;
  a_ctrl : bool;
  a_group : string option;
}

type branch = { br_region : int; br_base : Body.base; br_taken : bool }

type result = {
  accesses : access list;
  branches : branch list;
  log : Profiling.Access_log.t;
  loc_names : (int * string) list;
}

let cell_base = function
  | Cell_scalar s -> Body.B_scalar s
  | Cell_elem (a, _) -> Body.B_array a

let cell_name body = function
  | Cell_scalar s -> fst body.Body.b_scalars.(s)
  | Cell_elem (a, e) -> Printf.sprintf "%s[%d]" body.Body.b_arrays.(a) e

(* Deterministic stand-in for a data-dependent index: a fixed integer
   hash of (iteration, salt), so replaying the body is reproducible and
   the analyzer can be audited against exact re-runs. *)
let dyn_hash ~iter ~salt ~range =
  let h = (iter * 0x9e3779b1) lxor ((salt + 1) * 0x85ebca77) in
  (h lxor (h lsr 13)) land max_int mod range

let run ?commutative ?(ybranch = `Never) ~iterations body =
  let nregions = Array.length body.Body.b_regions in
  let values : (cell, int) Hashtbl.t = Hashtbl.create 64 in
  let log = Profiling.Access_log.create () in
  let loc_ids : (cell, int) Hashtbl.t = Hashtbl.create 64 in
  let loc_names = ref [] in
  let next_loc = ref 0 in
  let loc_of cell =
    match Hashtbl.find_opt loc_ids cell with
    | Some id -> id
    | None ->
      let id = !next_loc in
      incr next_loc;
      Hashtbl.add loc_ids cell id;
      loc_names := (id, cell_name body cell) :: !loc_names;
      id
  in
  let accesses = ref [] in
  let branches = ref [] in
  let next_value = ref 0 in
  let resolve i = function
    | Body.Scalar s -> Cell_scalar s
    | Body.Elem (a, idx) ->
      let e =
        match idx with
        | Body.Fixed c -> c
        | Body.Affine { stride; offset } -> (stride * i) + offset
        | Body.Dynamic { salt; range } -> dyn_hash ~iter:i ~salt ~range
      in
      Cell_elem (a, e)
  in
  for i = 0 to iterations - 1 do
    Array.iteri
      (fun region r ->
        let task = (i * nregions) + region in
        let offset = ref 0 in
        let record ~ctrl ~group op addr =
          let cell = resolve i addr in
          let a_op, log_op =
            match op with
            | `R -> (`R, Profiling.Access_log.Read)
            | `W ->
              incr next_value;
              (`W, Profiling.Access_log.Write !next_value)
          in
          if op = `W then Hashtbl.replace values cell !next_value;
          accesses :=
            { a_iter = i; a_region = region; a_op; a_cell = cell; a_ctrl = ctrl; a_group = group }
            :: !accesses;
          Profiling.Access_log.record log ~task ~loc:(loc_of cell) ~op:log_op
            ?group ~offset:!offset ();
          match Hashtbl.find_opt values cell with Some v -> v | None -> 0
        in
        let rec exec_stmts group stmts = List.iter (exec_stmt group) stmts
        and exec_stmt group = function
          | Body.Work w -> offset := !offset + w
          | Body.Read a -> ignore (record ~ctrl:false ~group `R a)
          | Body.Write a -> ignore (record ~ctrl:false ~group `W a)
          | Body.If { cond; then_; else_ } ->
            let taken =
              match cond with
              | Body.Every { period; phase } -> (i + phase) mod period = 0
              | Body.Test { addr; modulus } ->
                let v = record ~ctrl:true ~group `R addr in
                let taken = v mod modulus = 0 in
                branches :=
                  { br_region = region; br_base = Body.base_of_addr addr; br_taken = taken }
                  :: !branches;
                taken
            in
            exec_stmts group (if taken then then_ else else_)
          | Body.While { trips; body } ->
            for _ = 1 to trips do
              exec_stmts group body
            done
          | Body.Call { fn; body } ->
            let g =
              match commutative with
              | Some c -> Annotations.Commutative.group_of c ~fn
              | None -> None
            in
            exec_stmts (if g <> None then g else group) body
          | Body.Ybranch { probability; body } ->
            let take =
              match ybranch with
              | `Never -> false
              | `Compiler ->
                let k =
                  Annotations.Ybranch.interval
                    (Annotations.Ybranch.make ~probability)
                in
                i mod k = 0
            in
            if take then exec_stmts group body
        in
        exec_stmts None r.Body.r_stmts)
      body.Body.b_regions
  done;
  {
    accesses = List.rev !accesses;
    branches = List.rev !branches;
    log;
    loc_names = List.rev !loc_names;
  }
