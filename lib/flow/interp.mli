(** Reference interpreter for {!Body}.

    Executes a body for a given number of loop iterations, fully
    deterministically (the [Dynamic] index hash and [Ybranch] cut policy
    are pure functions of the iteration), producing both a raw access
    stream and a {!Profiling.Access_log} compatible with the memory
    profiler: task ids are [iteration * region_count + region], writes
    carry globally unique values (so no store is silent and no value is
    predictable), and offsets advance with [Work].

    Two Y-branch modes bracket the semantics the analyzer must cover:
    [`Never] models the {e original} sequential program, whose heuristic
    branches are (modelled as) never taken — this is the execution that
    defines each dependence's manifestation probability; [`Compiler]
    models the transformed program, which takes every Y-branch at its
    derived cut interval.  {!Analyze} must be sound against both. *)

type cell = Cell_scalar of int | Cell_elem of int * int
    (** A concrete location: a scalar, or one concrete array element. *)

type access = {
  a_iter : int;
  a_region : int;
  a_op : [ `R | `W ];
  a_cell : cell;
  a_ctrl : bool;  (** the read feeds a [Test] branch condition *)
  a_group : string option;  (** enclosing commutative group *)
}

type branch = { br_region : int; br_base : Body.base; br_taken : bool }
    (** One dynamic evaluation of a [Test] condition, in execution
        order; the stream's outcome-change rate estimates the
        misprediction rate of the control dependences it induces. *)

type result = {
  accesses : access list;  (** sequential execution order *)
  branches : branch list;
  log : Profiling.Access_log.t;
  loc_names : (int * string) list;  (** access-log location id -> name *)
}

val run :
  ?commutative:Annotations.Commutative.t ->
  ?ybranch:[ `Compiler | `Never ] ->
  iterations:int ->
  Body.t ->
  result
(** Default [ybranch] is [`Never].  Without [?commutative], calls carry
    no group. *)

val cell_base : cell -> Body.base

val cell_name : Body.t -> cell -> string
