(** Allocation-free integer min-heap.

    The unboxed sibling of {!Heap} for event queues on simulation hot
    paths: each entry is a priority plus two integer payload words, all
    stored in flat parallel arrays.  Equal priorities pop in insertion
    order (FIFO), matching {!Heap}.  [pop] deposits its result in
    mutable out-fields — read them with [popped_prio]/[popped_a]/
    [popped_b] immediately after a [pop] that returned [true]; they are
    overwritten by the next [pop]. *)

type t

val create : unit -> t

val length : t -> int

val is_empty : t -> bool

val add : t -> prio:int -> int -> int -> unit
(** [add t ~prio a b] inserts payload [(a, b)] at [prio]. *)

val pop : t -> bool
(** Remove the minimum entry; [false] when empty.  On [true], the
    popped entry is available via the accessors below. *)

val popped_prio : t -> int

val popped_a : t -> int

val popped_b : t -> int

val clear : t -> unit
(** Empty the heap and reset the FIFO sequence counter; keeps the
    backing arrays for reuse. *)
