type 'a t = { mutable front : 'a list; mutable back : 'a list; mutable len : int }

let create () = { front = []; back = []; len = 0 }

let length d = d.len

let is_empty d = d.len = 0

let push_back d x =
  d.back <- x :: d.back;
  d.len <- d.len + 1

let push_front d x =
  d.front <- x :: d.front;
  d.len <- d.len + 1

(* Move the reversed tail to the head when the head runs dry; each
   element is reversed at most once between its push and its pop. *)
let normalize d =
  match d.front with
  | [] ->
    d.front <- List.rev d.back;
    d.back <- []
  | _ :: _ -> ()

let peek_front d =
  normalize d;
  match d.front with [] -> None | x :: _ -> Some x

let pop_front d =
  normalize d;
  match d.front with
  | [] -> None
  | x :: rest ->
    d.front <- rest;
    d.len <- d.len - 1;
    Some x

(* Mirror image of [normalize] for the back end. *)
let normalize_back d =
  match d.back with
  | [] ->
    d.back <- List.rev d.front;
    d.front <- []
  | _ :: _ -> ()

let peek_back d =
  normalize_back d;
  match d.back with [] -> None | x :: _ -> Some x

let pop_back d =
  normalize_back d;
  match d.back with
  | [] -> None
  | x :: rest ->
    d.back <- rest;
    d.len <- d.len - 1;
    Some x

let clear d =
  d.front <- [];
  d.back <- [];
  d.len <- 0

let to_list d = d.front @ List.rev d.back
