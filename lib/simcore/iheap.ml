(* Struct-of-arrays binary min-heap: priorities, insertion sequence
   numbers (FIFO among equal priorities, like Heap) and two integer
   payload words live in parallel int arrays, so add/pop never touch the
   minor heap.  Pop writes its result into mutable out-fields instead of
   returning a tuple for the same reason. *)
type t = {
  mutable prio : int array;
  mutable seq : int array;
  mutable pa : int array;
  mutable pb : int array;
  mutable size : int;
  mutable next_seq : int;
  mutable out_prio : int;
  mutable out_a : int;
  mutable out_b : int;
}

let create () =
  {
    prio = Array.make 16 0;
    seq = Array.make 16 0;
    pa = Array.make 16 0;
    pb = Array.make 16 0;
    size = 0;
    next_seq = 0;
    out_prio = 0;
    out_a = 0;
    out_b = 0;
  }

let length t = t.size

let is_empty t = t.size = 0

let less t i j =
  t.prio.(i) < t.prio.(j) || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

let swap t i j =
  let swap_in (a : int array) =
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  in
  swap_in t.prio;
  swap_in t.seq;
  swap_in t.pa;
  swap_in t.pb

let grow t =
  let cap = Array.length t.prio in
  let extend a =
    let b = Array.make (2 * cap) 0 in
    Array.blit a 0 b 0 t.size;
    b
  in
  t.prio <- extend t.prio;
  t.seq <- extend t.seq;
  t.pa <- extend t.pa;
  t.pb <- extend t.pb

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && less t l i then l else i in
  let smallest = if r < t.size && less t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let add t ~prio a b =
  if t.size = Array.length t.prio then grow t;
  let i = t.size in
  t.prio.(i) <- prio;
  t.seq.(i) <- t.next_seq;
  t.pa.(i) <- a;
  t.pb.(i) <- b;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let pop t =
  if t.size = 0 then false
  else begin
    t.out_prio <- t.prio.(0);
    t.out_a <- t.pa.(0);
    t.out_b <- t.pb.(0);
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.size in
      t.prio.(0) <- t.prio.(last);
      t.seq.(0) <- t.seq.(last);
      t.pa.(0) <- t.pa.(last);
      t.pb.(0) <- t.pb.(last);
      sift_down t 0
    end;
    true
  end

let popped_prio t = t.out_prio

let popped_a t = t.out_a

let popped_b t = t.out_b

let clear t =
  t.size <- 0;
  t.next_seq <- 0
