(** Flat double-ended [int] queue over a circular buffer.

    The allocation-free sibling of {!Deque} for hot paths that move task
    ids: push/pop touch only preallocated cells (the buffer doubles on
    overflow), so a simulation tick enqueues and dequeues without
    producing any minor-heap garbage.  [peek_front_exn]/[pop_front_exn]
    avoid even the [option] box — check [is_empty] first. *)

type t

val create : ?capacity:int -> unit -> t
(** Initial capacity is rounded up to a power of two (default 16). *)

val length : t -> int

val is_empty : t -> bool

val push_back : t -> int -> unit

val push_front : t -> int -> unit
(** Insert at the head (next to be popped) — squash re-queues. *)

val peek_front_exn : t -> int
(** @raise Invalid_argument when empty. *)

val pop_front_exn : t -> int
(** @raise Invalid_argument when empty. *)

val peek_front : t -> int option

val pop_front : t -> int option

val clear : t -> unit

val to_list : t -> int list
(** Head-first. *)
