(** Mutable double-ended FIFO with amortized O(1) operations.

    The simulator's per-core in-queues need cheap append at the tail
    (dispatch), cheap removal at the head (issue), and occasional
    re-insertion at the head (squash re-queues a task for
    re-execution).  A two-list banker's queue under a mutable record
    gives all three without the O(n) cost of [l @ [x]]. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Append at the tail. *)

val push_front : 'a t -> 'a -> unit
(** Insert at the head (next to be popped). *)

val peek_front : 'a t -> 'a option

val pop_front : 'a t -> 'a option

val peek_back : 'a t -> 'a option

val pop_back : 'a t -> 'a option
(** Remove at the tail — a work-stealing thief takes the oldest entries
    from the back while the owner pushes and pops at the front.
    Amortized O(1) when one end dominates; [length] stays O(1) always. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Head-first. *)
