(* Flat circular buffer: head is the index of the front element, len the
   element count; the slot for a new back element is (head + len) mod
   capacity.  Capacity is a power of two so the wrap is a mask. *)
type t = { mutable data : int array; mutable head : int; mutable len : int }

let create ?(capacity = 16) () =
  let cap = ref 2 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  { data = Array.make !cap 0; head = 0; len = 0 }

let length q = q.len

let is_empty q = q.len = 0

let grow q =
  let cap = Array.length q.data in
  let data = Array.make (2 * cap) 0 in
  let tail = cap - q.head in
  (* Unroll the wrap: front segment first, then the wrapped prefix. *)
  Array.blit q.data q.head data 0 (min q.len tail);
  if q.len > tail then Array.blit q.data 0 data tail (q.len - tail);
  q.data <- data;
  q.head <- 0

let push_back q x =
  if q.len = Array.length q.data then grow q;
  let mask = Array.length q.data - 1 in
  q.data.((q.head + q.len) land mask) <- x;
  q.len <- q.len + 1

let push_front q x =
  if q.len = Array.length q.data then grow q;
  let mask = Array.length q.data - 1 in
  q.head <- (q.head - 1) land mask;
  q.data.(q.head) <- x;
  q.len <- q.len + 1

(* The empty cases return a sentinel instead of an option so the hot
   path never allocates; callers check [is_empty] or the sentinel. *)
let peek_front_exn q =
  if q.len = 0 then invalid_arg "Ring.peek_front_exn: empty";
  q.data.(q.head)

let pop_front_exn q =
  if q.len = 0 then invalid_arg "Ring.pop_front_exn: empty";
  let x = q.data.(q.head) in
  q.head <- (q.head + 1) land (Array.length q.data - 1);
  q.len <- q.len - 1;
  x

let peek_front q = if q.len = 0 then None else Some q.data.(q.head)

let pop_front q = if q.len = 0 then None else Some (pop_front_exn q)

let clear q =
  q.head <- 0;
  q.len <- 0

let to_list q =
  let mask = Array.length q.data - 1 in
  List.init q.len (fun i -> q.data.((q.head + i) land mask))
