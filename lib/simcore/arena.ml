type t = { mutable bufs : int array array }

let create () = { bufs = [||] }

let ensure_slot t slot =
  let n = Array.length t.bufs in
  if slot >= n then begin
    let bufs = Array.make (max (slot + 1) (max 8 (2 * n))) [||] in
    Array.blit t.bufs 0 bufs 0 n;
    t.bufs <- bufs
  end

(* Next power of two >= n, so repeated acquisitions with slowly growing
   lengths settle instead of reallocating every time. *)
let round_up n =
  let c = ref 16 in
  while !c < n do
    c := !c * 2
  done;
  !c

let ints t slot ~len =
  ensure_slot t slot;
  let buf = t.bufs.(slot) in
  if Array.length buf >= len then buf
  else begin
    let buf = Array.make (round_up len) 0 in
    t.bufs.(slot) <- buf;
    buf
  end

let ints_filled t slot ~len ~fill =
  let buf = ints t slot ~len in
  Array.fill buf 0 len fill;
  buf

let release t = t.bufs <- [||]

(* One arena per domain: simulation hot paths grab their scratch here so
   buffers are reused across iterations and sweep points without any
   cross-domain sharing or locking. *)
let key = Domain.DLS.new_key create

let domain_local () = Domain.DLS.get key
