(** Reusable flat [int array] scratch buffers.

    Simulation hot paths need many task-indexed arrays per run; naively
    allocating them on every entry multiplies GC pressure — and, under
    several domains, cross-domain minor-GC synchronization.  An arena
    hands out slot-keyed buffers that persist between runs: the first
    acquisition allocates, later acquisitions of the same slot reuse the
    same (possibly larger) array.

    Contract: a buffer obtained from [ints t slot] is valid until the
    next [ints t slot] call with the same slot; callers must treat only
    the first [len] cells as theirs and must not rely on
    [Array.length] (buffers are over-allocated to amortize growth).
    Arenas are single-domain objects — use [domain_local] to get this
    domain's arena. *)

type t

val create : unit -> t

val ints : t -> int -> len:int -> int array
(** [ints t slot ~len] returns a buffer of length at least [len] for
    [slot], reusing the previous buffer when big enough.  Contents are
    unspecified (stale data from earlier uses). *)

val ints_filled : t -> int -> len:int -> fill:int -> int array
(** [ints] with the first [len] cells set to [fill]. *)

val release : t -> unit
(** Drop every buffer, returning the memory to the GC. *)

val domain_local : unit -> t
(** The calling domain's private arena (created on first use).  Safe to
    use from simulation code running under a domain pool: each domain
    reuses its own buffers, nothing is shared. *)
