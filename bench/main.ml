(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, runs the ablation studies DESIGN.md calls out, and times
   the simulator/compiler kernels with Bechamel.

     dune exec bench/main.exe              # everything, medium scale
     dune exec bench/main.exe -- quick     # skip the Bechamel timing pass

   Independent studies run across a Domain pool sized by REPRO_JOBS
   (default: the machine's recommended domain count).  All printing
   happens on the main domain in registry order, so stdout is
   byte-identical at any job count. *)

open Bechamel
open Toolkit

let scale = Benchmarks.Study.Medium

(* Span aggregates want wall-clock, not processor time. *)
let () = Obs.Span.set_clock Unix.gettimeofday

let jobs = Parallel.Pool.default_domains ()

(* Where the machine-readable outputs (BENCH_pipeline.json,
   BENCH_summary.{json,csv}, BENCH_history.jsonl) land.  The default is
   the working directory — the files are committed perf records; tests
   and check.sh point BENCH_DIR at a scratch directory instead. *)
let bench_dir = Option.value (Sys.getenv_opt "BENCH_DIR") ~default:"."

let bench_path name = Filename.concat bench_dir name

let pool = Parallel.Pool.create ~domains:jobs

let section title =
  Format.printf "@.============================================================@.";
  Format.printf "%s@." title;
  Format.printf "============================================================@."

(* ------------------------------------------------------------------ *)
(* Experiments (computed once, reused by figures, tables and timers)   *)

(* Per-study wall-clock, recorded for BENCH_pipeline.json. *)
let study_seconds : (string * float) list ref = ref []

(* Per-study GC deltas under [--gc-stats].  Measured with
   [Gc.quick_stat] in whichever domain runs the study; with work
   stealing a study's sweep points may execute in other domains, so the
   per-study numbers are approximate attribution — the whole-run totals
   in the history record (main domain + pool per-slot sums) are exact. *)
let gc_stats_enabled = ref false

let study_gc : (string * (float * float * int)) list ref = ref []

let experiments =
  lazy
    (let timed =
       Parallel.Pool.map_list pool
         (fun (s : Benchmarks.Study.t) ->
           let t0 = Unix.gettimeofday () in
           let g0 = if !gc_stats_enabled then Some (Gc.quick_stat ()) else None in
           (* The nested sweep shares the pool: its points are stealable
              by idle domains instead of running sequentially in this
              one — that long-tail study no longer serializes the run. *)
           let e = Core.Experiment.run ~pool ~scale s in
           let g =
             match g0 with
             | None -> (0., 0., 0)
             | Some g0 ->
               let g1 = Gc.quick_stat () in
               ( g1.Gc.minor_words -. g0.Gc.minor_words,
                 g1.Gc.major_words -. g0.Gc.major_words,
                 g1.Gc.minor_collections - g0.Gc.minor_collections )
           in
           (e, Unix.gettimeofday () -. t0, g))
         Benchmarks.Registry.all
     in
     if !gc_stats_enabled then
       study_gc :=
         List.map
           (fun ((e : Core.Experiment.t), _, g) ->
             (e.Core.Experiment.study.Benchmarks.Study.spec_name, g))
           timed;
     let timed = List.map (fun (e, dt, _) -> (e, dt)) timed in
     study_seconds :=
       List.map
         (fun ((e : Core.Experiment.t), dt) ->
           let name = e.Core.Experiment.study.Benchmarks.Study.spec_name in
           Obs.Span.record Obs.Span.default ("study/" ^ name) dt;
           (name, dt))
         timed;
     List.map fst timed)

let experiment name =
  List.find
    (fun (e : Core.Experiment.t) -> e.Core.Experiment.study.Benchmarks.Study.spec_name = name)
    (Lazy.force experiments)

let by_names names = List.map experiment names

let study name =
  match Benchmarks.Registry.find name with Some s -> s | None -> assert false

(* ------------------------------------------------------------------ *)
(* Figures and tables                                                  *)

let figure1 () =
  section "Figure 1: Y-branch motivating example (dictionary compression)";
  let rng = Simcore.Rng.create 1 in
  let text = Workloads.Textgen.repetitive_text rng ~bytes:50000 ~redundancy:0.5 in
  let y = Annotations.Ybranch.make ~probability:0.0001 in
  let heuristic =
    Workloads.Dict_compress.compress ~policy:Workloads.Dict_compress.Heuristic text
  in
  let fixed =
    Workloads.Dict_compress.compress
      ~policy:(Workloads.Dict_compress.Fixed_interval (Annotations.Ybranch.interval y))
      text
  in
  Format.printf "@YBRANCH(probability=%.4f): cut interval %d chars@."
    (Annotations.Ybranch.probability y) (Annotations.Ybranch.interval y);
  Format.printf "heuristic: %d restarts, %d bits@." heuristic.Workloads.Dict_compress.restarts
    heuristic.Workloads.Dict_compress.output_bits;
  Format.printf "y-branch : %d restarts, %d bits (independent blocks: %d)@."
    fixed.Workloads.Dict_compress.restarts fixed.Workloads.Dict_compress.output_bits
    (List.length fixed.Workloads.Dict_compress.segments)

let speedup_of series n =
  match Sim.Speedup.at_threads series n with
  | Some p -> p.Sim.Speedup.speedup
  | None -> nan

let figure2 () =
  section "Figure 2: Commutative motivating example (Yacm_random)";
  let registry = Annotations.Commutative.create () in
  Annotations.Commutative.annotate registry ~fn:"Yacm_random" ~rollback:"Yacm_set_seed" ();
  (match Annotations.Commutative.validate_speculative registry with
  | Ok () -> Format.printf "COMMUTATIVE Yacm_random: valid under speculation@."
  | Error e -> Format.printf "invalid: %s@." e);
  let twolf = experiment "300.twolf" in
  let baseline = Core.Experiment.run ~scale ~use_baseline_plan:true (study "300.twolf") in
  Format.printf "300.twolf at 8 threads: %.2fx with the annotation, %.2fx without@."
    (speedup_of twolf.Core.Experiment.series 8)
    (speedup_of baseline.Core.Experiment.series 8)

let figure3 () =
  section "Figure 3: phase dependence graph and execution plan";
  Core.Report.figure3 Format.std_formatter (Machine.Config.default ~cores:8)

let figure4 () =
  section "Figure 4: speedup — 181.mcf, 253.perlbmk, 255.vortex, 256.bzip2";
  Core.Report.figure Format.std_formatter ~title:"(paper Figure 4)"
    (by_names [ "181.mcf"; "253.perlbmk"; "255.vortex"; "256.bzip2" ])

let figure5 () =
  section "Figure 5: speedup — 176.gcc, 254.gap";
  Core.Report.figure Format.std_formatter ~title:"(paper Figure 5)"
    (by_names [ "176.gcc"; "254.gap" ])

let figure6 () =
  section "Figure 6: speedup — 175.vpr, 186.crafty, 197.parser, 300.twolf";
  Core.Report.figure Format.std_formatter ~title:"(paper Figure 6)"
    (by_names [ "175.vpr"; "186.crafty"; "197.parser"; "300.twolf" ]);
  Core.Chart.pp Format.std_formatter
    (List.map
       (fun (e : Core.Experiment.t) -> e.Core.Experiment.series)
       (by_names [ "175.vpr"; "186.crafty"; "197.parser"; "300.twolf" ]))

let figure7 () =
  section "Figure 7: speedup — 164.gzip";
  Core.Report.figure Format.std_formatter ~title:"(paper Figure 7)" (by_names [ "164.gzip" ]);
  Format.printf "fixed-interval blocking compression loss: %.2f%% (paper: < 1%%)@."
    (100.0 *. Benchmarks.B164_gzip.compression_loss ~scale:Benchmarks.Study.Small)

let table1 () =
  section "Table 1: parallelized loops, lines changed, techniques";
  Core.Report.table1 Format.std_formatter Benchmarks.Registry.all

let table2 () =
  section "Table 2: best speedup vs Moore's-law expectation";
  Core.Report.table2 Format.std_formatter (Lazy.force experiments)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablation_annotations () =
  section "Ablation: sequential-model extensions on vs off (16 threads)";
  Format.printf "%-12s %12s %12s@." "benchmark" "annotated" "baseline";
  let rows =
    Parallel.Pool.map_list pool
      (fun name ->
        match Benchmarks.Registry.find name with
        | Some s when s.Benchmarks.Study.baseline_plan <> None ->
          let a = Core.Experiment.run ~pool ~scale ~threads:[ 1; 16 ] s in
          let b = Core.Experiment.run ~pool ~scale ~threads:[ 1; 16 ] ~use_baseline_plan:true s in
          Some
            ( name,
              speedup_of a.Core.Experiment.series 16,
              speedup_of b.Core.Experiment.series 16 )
        | _ -> None)
      Benchmarks.Registry.names
  in
  List.iter
    (function
      | Some (name, a, b) -> Format.printf "%-12s %11.2fx %11.2fx@." name a b
      | None -> ())
    rows;
  (* gzip and gcc ablate through workload variants, not plans. *)
  let sweep_plan plan profile =
    let built = Core.Framework.build ~plan profile in
    Sim.Speedup.sweep ~pool ~threads:[ 1; 16 ] ~label:"x" built.Core.Framework.input
  in
  let gzip = study "164.gzip" in
  let gcc = study "176.gcc" in
  let variants =
    Parallel.Pool.map_list pool
      (fun mk -> speedup_of (mk ()) 16)
      [
        (fun () ->
          sweep_plan gzip.Benchmarks.Study.plan
            (Benchmarks.B164_gzip.run_with_policy ~ybranch:true ~scale));
        (fun () ->
          sweep_plan gzip.Benchmarks.Study.plan
            (Benchmarks.B164_gzip.run_with_policy ~ybranch:false ~scale));
        (fun () ->
          sweep_plan gcc.Benchmarks.Study.plan
            (Benchmarks.B176_gcc.run_with_label_scheme ~per_function_labels:true ~scale));
        (fun () ->
          sweep_plan gcc.Benchmarks.Study.plan
            (Benchmarks.B176_gcc.run_with_label_scheme ~per_function_labels:false ~scale));
      ]
  in
  match variants with
  | [ gzip_y; gzip_h; gcc_per_fn; gcc_global ] ->
    Format.printf "%-12s %11.2fx %11.2fx   (Y-branch vs heuristic blocks)@." "164.gzip"
      gzip_y gzip_h;
    Format.printf "%-12s %11.2fx %11.2fx   (per-function vs global label_num)@." "176.gcc"
      gcc_per_fn gcc_global
  | _ -> assert false

let ablation_policies () =
  section "Ablation: misspeculation policy and eager forwarding (16 threads)";
  List.iter
    (fun bench ->
      Format.printf "%s:@." bench;
      let rows =
        Parallel.Pool.map_list pool
          (fun (label, policy) ->
            let e = Core.Experiment.run ~pool ~scale ~threads:[ 1; 16 ] ~policy (study bench) in
            let misspec = Core.Experiment.misspec_total e ~threads:16 in
            (label, speedup_of e.Core.Experiment.series 16, misspec))
          [
            ( "serialize (paper's model)",
              { Sim.Pipeline.misspec = Sim.Pipeline.Serialize; forwarding = false } );
            ( "squash + re-execute",
              { Sim.Pipeline.misspec = Sim.Pipeline.Squash; forwarding = false } );
            ( "serialize + forwarding",
              { Sim.Pipeline.misspec = Sim.Pipeline.Serialize; forwarding = true } );
          ]
      in
      List.iter
        (fun (label, sp, misspec) ->
          Format.printf "  %-28s %8.2fx  (misspec-affected tasks: %d)@." label sp misspec)
        rows)
    (* twolf: dense conflicts — squash collapses into a re-execution
       storm, vindicating the paper's serialize-on-occurrence model;
       vortex: sparse conflicts — the policies barely differ. *)
    [ "300.twolf"; "255.vortex" ]

let ablation_queue_capacity () =
  section "Ablation: queue capacity (164.gzip, 16 threads; paper uses 32 entries)";
  let gzip = study "164.gzip" in
  let profile = gzip.Benchmarks.Study.run ~scale in
  let built = Core.Framework.build ~plan:gzip.Benchmarks.Study.plan profile in
  Parallel.Pool.map_list pool
    (fun cap ->
      let config ~cores = Machine.Config.make ~cores ~queue_capacity:cap () in
      let series =
        Sim.Speedup.sweep ~pool ~threads:[ 1; 16 ] ~config ~label:"q" built.Core.Framework.input
      in
      (cap, speedup_of series 16))
    [ 1; 2; 4; 8; 32; 128 ]
  |> List.iter (fun (cap, sp) -> Format.printf "capacity %3d: %.2fx@." cap sp)

let ablation_silent_stores () =
  section "Ablation: silent-store detection (181.mcf refresh_potential, 16 threads)";
  let mcf = study "181.mcf" in
  Parallel.Pool.map_list pool
    (fun (label, silent) ->
      let plan =
        { mcf.Benchmarks.Study.plan with Speculation.Spec_plan.silent_stores = silent }
      in
      let profile = mcf.Benchmarks.Study.run ~scale in
      let built = Core.Framework.build ~plan profile in
      let series = Sim.Speedup.sweep ~pool ~threads:[ 1; 16 ] ~label built.Core.Framework.input in
      (label, speedup_of series 16))
    [ ("silent stores on", true); ("silent stores off", false) ]
  |> List.iter (fun (label, sp) -> Format.printf "%-22s %.2fx@." label sp)

let dswp_vs_tls () =
  section "DSWP plan vs TLS plan (paper Section 3.2: 'similar results'; 16 threads)";
  Format.printf "%-12s %10s %10s@." "benchmark" "DSWP" "TLS";
  List.iter
    (fun (e : Core.Experiment.t) ->
      let input = e.Core.Experiment.built.Core.Framework.input in
      let tls = Sim.Tls_plan.speedup (Machine.Config.default ~cores:16) input in
      Format.printf "%-12s %9.2fx %9.2fx@."
        e.Core.Experiment.study.Benchmarks.Study.spec_name
        (speedup_of e.Core.Experiment.series 16)
        tls)
    (Lazy.force experiments)

let auto_vs_hand () =
  section "Automatic (profile-guided) plan vs hand plan (16 threads)";
  Format.printf "%-12s %10s %10s@." "benchmark" "hand" "auto";
  Parallel.Pool.map_list pool
    (fun (s : Benchmarks.Study.t) ->
      let speedup_built (b : Core.Framework.built) =
        let series =
          Sim.Speedup.sweep ~pool ~threads:[ 1; 16 ] ~label:"x" b.Core.Framework.input
        in
        speedup_of series 16
      in
      let hand =
        speedup_built (Core.Framework.build ~plan:s.Benchmarks.Study.plan (s.Benchmarks.Study.run ~scale))
      in
      let auto_built, _ =
        Core.Framework.build_auto
          ~commutative:s.Benchmarks.Study.plan.Speculation.Spec_plan.commutative
          (s.Benchmarks.Study.run ~scale)
      in
      (s.Benchmarks.Study.spec_name, hand, speedup_built auto_built))
    Benchmarks.Registry.all
  |> List.iter (fun (name, hand, auto) ->
         Format.printf "%-12s %9.2fx %9.2fx@." name hand auto)

let gantt_demo () =
  section "Schedule detail: 256.bzip2 on 8 cores (Gantt; paper Figure 3c's shape)";
  let bzip2 = study "256.bzip2" in
  let profile = bzip2.Benchmarks.Study.run ~scale:Benchmarks.Study.Small in
  let built = Core.Framework.build ~plan:bzip2.Benchmarks.Study.plan profile in
  List.iter
    (function
      | Sim.Input.Serial _ -> ()
      | Sim.Input.Parallel loop ->
        let r = Sim.Pipeline.run_loop (Machine.Config.default ~cores:8) loop in
        Sim.Gantt.pp ~cores:8 Format.std_formatter r)
    built.Core.Framework.input.Sim.Input.segments

let static_model () =
  section "Static model: DSWP partition and pipeline bound per benchmark";
  List.iter
    (fun (s : Benchmarks.Study.t) ->
      let partition =
        Dswp.Partition.partition (s.Benchmarks.Study.pdg ())
          ~enabled:(Core.Framework.enabled_breakers s.Benchmarks.Study.plan)
      in
      Format.printf "%-12s parallel fraction %.2f, static bound at 32 threads %.1fx@."
        s.Benchmarks.Study.spec_name
        (Dswp.Partition.parallel_fraction partition)
        (Dswp.Partition.pipeline_bound partition ~threads:32))
    Benchmarks.Registry.all

(* ------------------------------------------------------------------ *)
(* Bechamel timing of the kernels                                      *)

let bechamel_tests () =
  let gzip_input =
    lazy
      (let gzip = study "164.gzip" in
       let profile = gzip.Benchmarks.Study.run ~scale:Benchmarks.Study.Small in
       (Core.Framework.build ~plan:gzip.Benchmarks.Study.plan profile).Core.Framework.input)
  in
  let sim_kernel cores () =
    let input = Lazy.force gzip_input in
    ignore (Sim.Pipeline.run (Machine.Config.default ~cores) input)
  in
  let partition_kernel () =
    List.iter
      (fun (s : Benchmarks.Study.t) ->
        ignore
          (Dswp.Partition.partition (s.Benchmarks.Study.pdg ())
             ~enabled:(Core.Framework.enabled_breakers s.Benchmarks.Study.plan)))
      Benchmarks.Registry.all
  in
  let profiler_kernel () =
    let bzip2 = study "256.bzip2" in
    let p = bzip2.Benchmarks.Study.run ~scale:Benchmarks.Study.Small in
    ignore (Core.Framework.build ~plan:bzip2.Benchmarks.Study.plan p)
  in
  [
    Test.make ~name:"pipeline-sim/8-cores" (Staged.stage (sim_kernel 8));
    Test.make ~name:"pipeline-sim/32-cores" (Staged.stage (sim_kernel 32));
    Test.make ~name:"dswp-partition/all-pdgs" (Staged.stage partition_kernel);
    Test.make ~name:"profile+resolve/bzip2-small" (Staged.stage profiler_kernel);
  ]

let run_bechamel () =
  section "Bechamel: simulator and compiler kernel timings";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let grouped = Test.make_grouped ~name:"kernels" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ t ] -> Format.printf "%-32s %12.0f ns/run@." name t
      | Some _ | None -> Format.printf "%-32s (no estimate)@." name)
    results

(* ------------------------------------------------------------------ *)
(* Machine-readable perf record                                        *)

(* BENCH_pipeline.json gives future PRs a wall-clock trajectory: jobs
   used, total harness time, and per-study experiment time.  Timings
   vary run to run and are deliberately kept out of stdout so that the
   printed tables/figures stay byte-identical at any job count. *)
let write_bench_json ~total_seconds =
  let oc = open_out (bench_path "BENCH_pipeline.json") in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"harness\": \"bench/main.exe\",\n";
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"scale\": %S,\n" (Benchmarks.Study.scale_to_string scale);
  Printf.fprintf oc "  \"total_seconds\": %.3f,\n" total_seconds;
  Printf.fprintf oc "  \"studies\": [";
  List.iteri
    (fun i (name, dt) ->
      Printf.fprintf oc "%s\n    { \"name\": %S, \"seconds\": %.3f }"
        (if i = 0 then "" else ",")
        name dt)
    !study_seconds;
  Printf.fprintf oc "\n  ]\n}\n";
  close_out oc

(* BENCH_summary.{json,csv}: simulator counters/gauges from one
   instrumented registry run (164.gzip, 16 cores — the paper's headline
   configuration) plus every wall-clock span aggregate the harness
   accumulated (per-study experiment times, per-sweep-point simulation
   times across all pool domains).  Like BENCH_pipeline.json these are
   files, not stdout, so the printed report stays byte-identical. *)
(* Per-study attribution at the paper's thread count: where each loop's
   span goes (stalls, critical-path composition, bounds headroom) plus
   the one-line diagnosis.  Attached to BENCH_summary.json so the perf
   record says not just how fast but why. *)
let attribution_blocks () =
  List.concat_map
    (fun (e : Core.Experiment.t) ->
      let s = e.Core.Experiment.study in
      let cfg = Machine.Config.default ~cores:s.Benchmarks.Study.paper_threads in
      List.filter_map
        (function
          | Sim.Input.Serial _ -> None
          | Sim.Input.Parallel loop ->
            let a = Obs_analysis.Attribution.run cfg loop in
            let block =
              match Obs_analysis.Attribution.to_json a with
              | Obs.Json.Obj fields ->
                Obs.Json.Obj
                  (("study", Obs.Json.Str s.Benchmarks.Study.spec_name)
                   :: fields
                  @ [ ("diagnosis", Obs.Json.Str (Obs_analysis.Explain.diagnose a)) ])
              | j -> j
            in
            Some block)
        e.Core.Experiment.built.Core.Framework.input.Sim.Input.segments)
    (Lazy.force experiments)

(* Per-study calibration fidelity: fit Sim.Calibrate from each study's
   profiled trace, realize the hand partition through the calibrated
   cost model, and record the worst relative error against the trace
   sweep.  scripts/check_calibration.ml gates on these numbers, so a
   regression in the calibrated realization shows up as a failing check
   rather than a silently drifting model. *)
let calibration_blocks () =
  Parallel.Pool.map_list pool
    (fun (s : Benchmarks.Study.t) ->
      match Core.Plan_search.calibration_report ~scale s with
      | Ok r -> Core.Plan_search.cal_report_json r
      | Error e ->
        Obs.Json.Obj
          [
            ("study", Obs.Json.Str s.Benchmarks.Study.spec_name);
            ("error", Obs.Json.Str e);
          ])
    Benchmarks.Registry.all

let write_obs_summary () =
  let gzip = study "164.gzip" in
  let profile = gzip.Benchmarks.Study.run ~scale:Benchmarks.Study.Small in
  let built = Core.Framework.build ~plan:gzip.Benchmarks.Study.plan profile in
  let metrics = Obs.Metrics.create ~sampling:true () in
  List.iter
    (function
      | Sim.Input.Serial _ -> ()
      | Sim.Input.Parallel loop ->
        ignore
          (Sim.Pipeline.run_loop (Machine.Config.default ~cores:16) ~metrics loop))
    built.Core.Framework.input.Sim.Input.segments;
  let snap = Obs.Metrics.snapshot metrics in
  let spans = Obs.Span.snapshot Obs.Span.default in
  let extra =
    [
      ("attribution", Obs.Json.Arr (attribution_blocks ()));
      ("calibration", Obs.Json.Arr (calibration_blocks ()));
    ]
  in
  Obs.Summary.write_json ~metrics:snap ~spans ~extra (bench_path "BENCH_summary.json");
  Obs.Summary.write_csv ~metrics:snap ~spans (bench_path "BENCH_summary.csv")

(* ------------------------------------------------------------------ *)
(* Bench history (JSONL, appended every run)                           *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    let status = Unix.close_process_in ic in
    if status = Unix.WEXITED 0 && line <> "" then line else "unknown"

(* Digest of everything that changes what the simulated numbers mean:
   input scale, the study list, and the default machine parameters.
   Same digest => entries are comparable; compare_bench warns (but still
   compares) when it differs. *)
let config_digest () =
  let cfg = Machine.Config.default ~cores:8 in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          (Benchmarks.Study.scale_to_string scale
           :: string_of_int cfg.Machine.Config.queue_capacity
           :: string_of_int cfg.Machine.Config.comm_latency
           :: Benchmarks.Registry.names)))

let write_history ~total_seconds =
  let studies =
    List.map2
      (fun (e : Core.Experiment.t) (name, dt) ->
        assert (e.Core.Experiment.study.Benchmarks.Study.spec_name = name);
        let best = Core.Experiment.best e in
        {
          Obs_analysis.History.study = name;
          threads = best.Sim.Speedup.threads;
          span = best.Sim.Speedup.result.Sim.Pipeline.total_time;
          speedup = best.Sim.Speedup.speedup;
          seconds = dt;
        })
      (Lazy.force experiments) !study_seconds
  in
  (* Whole-run GC accounting: the main domain's [quick_stat] plus the
     pool's per-slot minor-word sums, which cover allocation in the
     worker domains that the main domain's counters never see.  (Slot 0
     is the main domain helping the pool — already inside [quick_stat] —
     so only slots >= 1 are added.) *)
  let gc =
    if not !gc_stats_enabled then None
    else begin
      let g = Gc.quick_stat () in
      let ps = Parallel.Pool.stats pool in
      let worker_minor = ref 0. in
      Array.iteri
        (fun i w -> if i > 0 then worker_minor := !worker_minor +. w)
        ps.Parallel.Pool.stat_minor_words;
      Some
        {
          Obs_analysis.History.gc_minor_words = g.Gc.minor_words +. !worker_minor;
          gc_promoted_words = g.Gc.promoted_words;
          gc_major_words = g.Gc.major_words;
          gc_minor_collections = g.Gc.minor_collections;
          gc_major_collections = g.Gc.major_collections;
        }
    end
  in
  let entry =
    {
      Obs_analysis.History.rev = git_rev ();
      config = config_digest ();
      scale = Benchmarks.Study.scale_to_string scale;
      jobs;
      total_seconds;
      gc;
      studies;
      real = [];
    }
  in
  Obs_analysis.History.append (bench_path "BENCH_history.jsonl") entry

(* GC report under [--gc-stats]: stderr, never stdout — the printed
   tables must stay byte-identical at any job count and GC numbers vary
   with scheduling. *)
let print_gc_report () =
  Format.eprintf "@.--- GC stats (--gc-stats) ---@.";
  List.iter
    (fun (name, (minor, major, mcoll)) ->
      Format.eprintf "%-14s minor %12.0f words, major %12.0f words, %5d minor collections@."
        name minor major mcoll)
    !study_gc;
  let g = Gc.quick_stat () in
  Format.eprintf
    "main domain: %.0f minor words, %.0f promoted, %.0f major, %d/%d minor/major collections@."
    g.Gc.minor_words g.Gc.promoted_words g.Gc.major_words g.Gc.minor_collections
    g.Gc.major_collections;
  Format.eprintf "%a@." Parallel.Pool.pp_stats pool

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "quick" args in
  gc_stats_enabled := List.mem "--gc-stats" args;
  let t0 = Unix.gettimeofday () in
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  figure5 ();
  figure6 ();
  figure7 ();
  table1 ();
  table2 ();
  ablation_annotations ();
  ablation_policies ();
  ablation_queue_capacity ();
  ablation_silent_stores ();
  dswp_vs_tls ();
  auto_vs_hand ();
  gantt_demo ();
  static_model ();
  if not quick then run_bechamel ();
  let total_seconds = Unix.gettimeofday () -. t0 in
  write_bench_json ~total_seconds;
  write_obs_summary ();
  write_history ~total_seconds;
  if !gc_stats_enabled then print_gc_report ();
  Parallel.Pool.shutdown pool;
  Format.printf "@.done.@."
