(* Fully automatic parallelization, two ways:

   - the profiling pass infers a speculation plan from the recorded run
     (Section 2.1's "judicious use of speculation"), given only the
     Commutative annotations a profile cannot infer;
   - the planner tournament (Core.Plan_search) searches the whole plan
     space — partitioner x breaker subset x replication x queue depth —
     pruning with the lint and sound analytic bounds.

   Both are compared against each study's hand-written plan.

     dune exec examples/auto_plan.exe
*)

let missing_point bench =
  (* A sweep that cannot produce the requested point is a broken
     experiment, not a zero — fail loudly instead of printing nan. *)
  Format.eprintf "auto_plan: no 16-thread sweep point for %s@." bench;
  exit 1

let () =
  Parallel.Pool.with_pool ~domains:(Parallel.Pool.default_domains ()) (fun pool ->
      Format.printf "%-12s %12s %12s %12s   inferred decisions@." "benchmark"
        "hand plan" "auto plan" "search";
      List.iter
        (fun (s : Benchmarks.Study.t) ->
          let speedup_of built =
            let series =
              Sim.Speedup.sweep ~threads:[ 1; 16 ] ~label:"x"
                built.Core.Framework.input
            in
            match Sim.Speedup.at_threads series 16 with
            | Some p -> p.Sim.Speedup.speedup
            | None -> missing_point s.Benchmarks.Study.spec_name
          in
          let hand =
            speedup_of
              (Core.Framework.build ~plan:s.Benchmarks.Study.plan
                 (s.Benchmarks.Study.run ~scale:Benchmarks.Study.Small))
          in
          (* Reuse the study's Commutative annotations — the programmer's
             contribution — and infer everything else. *)
          let commutative = s.Benchmarks.Study.plan.Speculation.Spec_plan.commutative in
          let auto_built, plans =
            Core.Framework.build_auto ~commutative
              (s.Benchmarks.Study.run ~scale:Benchmarks.Study.Small)
          in
          let auto = speedup_of auto_built in
          let search =
            let report = Core.Plan_search.run ~pool s in
            match Core.Plan_search.winner_speedup report with
            | Some w -> w
            | None -> missing_point s.Benchmarks.Study.spec_name
          in
          let describe (_, (p : Speculation.Spec_plan.t)) =
            Printf.sprintf "%d value / %d sync locs"
              (List.length p.Speculation.Spec_plan.value_locs)
              (List.length p.Speculation.Spec_plan.sync_locs)
          in
          let shown = List.filteri (fun i _ -> i < 2) plans in
          let hidden = List.length plans - List.length shown in
          Format.printf "%-12s %11.2fx %11.2fx %11.2fx   %s%s@."
            s.Benchmarks.Study.spec_name hand auto search
            (String.concat "; " (List.map describe shown))
            (if hidden > 0 then Printf.sprintf "; … +%d more" hidden else ""))
        Benchmarks.Registry.all)
